"""Principal Component Analysis via singular value decomposition.

Appendix A.1: "PCA is a linear dimensionality reduction technique
using the Singular Value Decomposition (SVD) of the data to project it
to a lower-dimensional space, reducing the 13-dimensional feature
vector to a three-dimension space."
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Fit/transform PCA with explained-variance reporting."""

    def __init__(self, n_components: int = 3) -> None:
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        self.n_components = n_components
        self.mean: np.ndarray | None = None
        self.components: np.ndarray | None = None
        self.explained_variance: np.ndarray | None = None
        self.explained_variance_ratio: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples, features)")
        if x.shape[0] < 2:
            raise ValueError("PCA needs at least two samples")
        if self.n_components > min(x.shape):
            raise ValueError(
                f"n_components={self.n_components} exceeds "
                f"min(n_samples, n_features)={min(x.shape)}"
            )
        self.mean = x.mean(axis=0)
        centered = x - self.mean
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variances = singular_values**2 / (x.shape[0] - 1)
        self.components = vt[: self.n_components]
        self.explained_variance = variances[: self.n_components]
        total = variances.sum()
        self.explained_variance_ratio = (
            self.explained_variance / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def save(self, path: str | os.PathLike[str]) -> pathlib.Path:
        """Serialise the fitted projection to one ``.npz`` file.

        :meth:`load` restores bit-identical transforms.
        """
        if self.components is None or self.mean is None:
            raise RuntimeError("PCA is not fitted")
        path = pathlib.Path(path)
        with open(path, "wb") as handle:
            np.savez(
                handle,
                mean=self.mean,
                components=self.components,
                explained_variance=self.explained_variance,
                explained_variance_ratio=self.explained_variance_ratio,
                n_components=np.int64(self.n_components),
            )
        return path

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "PCA":
        """Restore a projection saved by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            model = cls(n_components=int(data["n_components"]))
            model.mean = np.ascontiguousarray(data["mean"])
            model.components = np.ascontiguousarray(data["components"])
            model.explained_variance = np.ascontiguousarray(
                data["explained_variance"]
            )
            model.explained_variance_ratio = np.ascontiguousarray(
                data["explained_variance_ratio"]
            )
        return model

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components is None or self.mean is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(x, dtype=float) - self.mean) @ self.components.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map projected points back into the original feature space."""
        if self.components is None or self.mean is None:
            raise RuntimeError("PCA is not fitted")
        return np.asarray(z, dtype=float) @ self.components + self.mean
