"""Linear (ridge) regression with a closed-form solution.

"Linear regression finds the linear relationship between a target and
one or more features" (§4.3).  A tiny L2 penalty keeps the normal
equations well conditioned when one-hot CWE features are collinear.
The Gram-matrix contraction routes through the pluggable numeric
backend (:mod:`repro.ml.backend`) like every other training GEMM.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from repro.ml.backend import active_backend

__all__ = ["LinearRegression"]


class LinearRegression:
    """Ordinary least squares with optional L2 regularisation."""

    def __init__(self, l2: float = 1e-6) -> None:
        if l2 < 0:
            raise ValueError("l2 penalty must be non-negative")
        self.l2 = l2
        self.coefficients: np.ndarray | None = None
        self.intercept: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Solve ``min ||Xw + b - y||^2 + l2 ||w||^2``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples, features)")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        x_mean = x.mean(axis=0)
        y_mean = y.mean()
        x_centered = x - x_mean
        y_centered = y - y_mean
        backend = active_backend()
        gram = backend.matmul(x_centered.T, x_centered)
        gram[np.diag_indices_from(gram)] += self.l2
        self.coefficients = np.linalg.solve(gram, x_centered.T @ y_centered)
        self.intercept = float(y_mean - x_mean @ self.coefficients)
        return self

    def save(self, path: str | os.PathLike[str]) -> pathlib.Path:
        """Serialise the fitted coefficients to one ``.npz`` file.

        :meth:`load` restores bit-identical predictions — the arrays
        round-trip byte-for-byte through the npz container.
        """
        if self.coefficients is None:
            raise RuntimeError("model is not fitted")
        path = pathlib.Path(path)
        with open(path, "wb") as handle:
            np.savez(
                handle,
                coefficients=self.coefficients,
                intercept=np.float64(self.intercept),
                l2=np.float64(self.l2),
            )
        return path

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "LinearRegression":
        """Restore a model saved by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            model = cls(l2=float(data["l2"]))
            model.coefficients = np.ascontiguousarray(data["coefficients"])
            model.intercept = float(data["intercept"])
        return model

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coefficients is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(x, dtype=float) @ self.coefficients + self.intercept
