"""Evaluation metrics and dataset splitting.

Implements the paper's error measures (§4.3):

- average error        AE  = (1/N) * sum |y_i - f(x_i)|
- average error rate   AER = (1/N) * sum |y_i - f(x_i)| / y_i

plus classification accuracy, per-class accuracy (Table 7's "by input
class"), confusion matrices (Tables 4, 6, 13-15 are transition /
confusion tables), and the stratified 80/20 split ("evenly distributed
among classes").
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

__all__ = [
    "accuracy",
    "average_error",
    "average_error_rate",
    "confusion_matrix",
    "per_class_accuracy",
    "stratified_split",
]


def average_error(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error between scores."""
    actual = np.asarray(actual, dtype=float).reshape(-1)
    predicted = np.asarray(predicted, dtype=float).reshape(-1)
    _check_lengths(actual, predicted)
    if actual.size == 0:
        return 0.0
    return float(np.mean(np.abs(actual - predicted)))


def average_error_rate(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean relative absolute error; samples with y=0 are skipped."""
    actual = np.asarray(actual, dtype=float).reshape(-1)
    predicted = np.asarray(predicted, dtype=float).reshape(-1)
    _check_lengths(actual, predicted)
    nonzero = actual != 0
    if not np.any(nonzero):
        return 0.0
    return float(
        np.mean(np.abs(actual[nonzero] - predicted[nonzero]) / actual[nonzero])
    )


def accuracy(actual: Sequence[Hashable], predicted: Sequence[Hashable]) -> float:
    """Fraction of exact label matches."""
    if len(actual) != len(predicted):
        raise ValueError("label sequences must have the same length")
    if not actual:
        return 0.0
    matches = sum(1 for a, p in zip(actual, predicted) if a == p)
    return matches / len(actual)


def per_class_accuracy(
    groups: Sequence[Hashable],
    actual: Sequence[Hashable],
    predicted: Sequence[Hashable],
) -> dict[Hashable, float]:
    """Accuracy computed separately per group label.

    Table 7 reports accuracy "by input (v2) class": the grouping key is
    the v2 severity while actual/predicted are v3 labels.
    """
    if not (len(groups) == len(actual) == len(predicted)):
        raise ValueError("all sequences must have the same length")
    totals: dict[Hashable, int] = {}
    hits: dict[Hashable, int] = {}
    for group, a, p in zip(groups, actual, predicted):
        totals[group] = totals.get(group, 0) + 1
        if a == p:
            hits[group] = hits.get(group, 0) + 1
    return {group: hits.get(group, 0) / total for group, total in totals.items()}


def confusion_matrix(
    actual: Sequence[Hashable],
    predicted: Sequence[Hashable],
    labels: Sequence[Hashable],
) -> np.ndarray:
    """Counts[i, j] = samples with actual=labels[i], predicted=labels[j]."""
    if len(actual) != len(predicted):
        raise ValueError("label sequences must have the same length")
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for a, p in zip(actual, predicted):
        if a in index and p in index:
            matrix[index[a], index[p]] += 1
    return matrix


def stratified_split(
    labels: Sequence[Hashable],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Split sample indices into train/test, stratified by label.

    Mirrors §4.3: "splitting the ground truth data into 80% training
    and 20% testing datasets evenly distributed among classes."
    Returns (train_indices, test_indices).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    by_label: dict[Hashable, list[int]] = {}
    for i, label in enumerate(labels):
        by_label.setdefault(label, []).append(i)
    train: list[int] = []
    test: list[int] = []
    for members in by_label.values():
        members = np.array(members)
        rng.shuffle(members)
        n_test = int(round(len(members) * test_fraction))
        # Keep at least one sample on each side when a class is tiny.
        if len(members) > 1:
            n_test = min(max(n_test, 1), len(members) - 1)
        else:
            n_test = 0
        test.extend(members[:n_test].tolist())
        train.extend(members[n_test:].tolist())
    return np.array(sorted(train), dtype=int), np.array(sorted(test), dtype=int)


def _check_lengths(actual: np.ndarray, predicted: np.ndarray) -> None:
    if actual.shape != predicted.shape:
        raise ValueError("actual and predicted must have the same shape")
