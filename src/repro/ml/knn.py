"""k-nearest-neighbour classification.

§4.4: "We observed that k-NN (k = 1) provides the best results,
predicting 151 different types with 65.60% accuracy."  Distances are
computed in batches so the memory footprint stays bounded for large
description corpora.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier:
    """Majority-vote k-NN over Euclidean (or cosine) distance."""

    def __init__(self, k: int = 1, metric: str = "euclidean") -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"unsupported metric {metric!r}")
        self.k = k
        self.metric = metric
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        if x.shape[0] == 0:
            raise ValueError("cannot fit k-NN on an empty training set")
        self._classes, encoded = np.unique(y, return_inverse=True)
        self._y = encoded
        if self.metric == "cosine":
            norms = np.linalg.norm(x, axis=1, keepdims=True)
            x = x / np.maximum(norms, 1e-12)
        self._x = x
        return self

    def save(self, path: str | os.PathLike[str]) -> pathlib.Path:
        """Serialise the fitted neighbour set to one ``.npz`` file.

        The (already metric-normalised) training matrix, encoded labels
        and class table are stored verbatim, so :meth:`load` restores
        bit-identical predictions.
        """
        if self._x is None or self._y is None or self._classes is None:
            raise RuntimeError("model is not fitted")
        path = pathlib.Path(path)
        with open(path, "wb") as handle:
            np.savez(
                handle,
                x=self._x,
                y=self._y,
                classes=self._classes,
                k=np.int64(self.k),
                metric=self.metric,
            )
        return path

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "KNeighborsClassifier":
        """Restore a classifier saved by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            model = cls(k=int(data["k"]), metric=str(data["metric"][()]))
            model._x = np.ascontiguousarray(data["x"])
            model._y = np.ascontiguousarray(data["y"])
            model._classes = np.ascontiguousarray(data["classes"])
        return model

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        assert self._x is not None
        if self.metric == "cosine":
            norms = np.linalg.norm(queries, axis=1, keepdims=True)
            queries = queries / np.maximum(norms, 1e-12)
            return 1.0 - queries @ self._x.T
        sq_q = np.sum(queries**2, axis=1)[:, None]
        sq_x = np.sum(self._x**2, axis=1)[None, :]
        return np.maximum(sq_q + sq_x - 2.0 * (queries @ self._x.T), 0.0)

    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Predict the majority class among the k nearest neighbours."""
        if self._x is None or self._y is None or self._classes is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        k = min(self.k, self._x.shape[0])
        n_classes = self._classes.shape[0]
        out = np.empty(x.shape[0], dtype=int)
        for start in range(0, x.shape[0], batch_size):
            batch = x[start : start + batch_size]
            distances = self._distances(batch)
            if k == 1:
                nearest = np.argmin(distances, axis=1)
                out[start : start + batch.shape[0]] = self._y[nearest]
                continue
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            votes = self._y[nearest]
            counts = np.zeros((batch.shape[0], n_classes), dtype=int)
            for col in range(k):
                np.add.at(counts, (np.arange(batch.shape[0]), votes[:, col]), 1)
            out[start : start + batch.shape[0]] = np.argmax(counts, axis=1)
        return self._classes[out]
