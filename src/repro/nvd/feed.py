"""NVD JSON data-feed serialisation.

Reads and writes the NVD "JSON 1.0/1.1" feed layout (the format the
paper's snapshot was distributed in): a top-level object with
``CVE_Items``, each holding ``cve`` (metadata, descriptions,
problemtype, references), ``configurations`` (CPE applicability) and
``impact`` (``baseMetricV2`` / ``baseMetricV3``).  Round-tripping a
snapshot through this module is lossless for every field the cleaning
pipeline touches.
"""

from __future__ import annotations

import datetime
import gzip
import json
import pathlib
from typing import Any

from repro import perf
from repro.cpe import bind_to_formatted_string, parse_cpe
from repro.cvss import (
    parse_v2_vector,
    parse_v3_vector,
    score_v2,
    score_v3,
    v2_vector_string,
    v3_vector_string,
)
from repro.nvd.models import CveEntry, Reference

__all__ = ["entries_from_feed", "entries_to_feed", "load_feed", "save_feed"]

_DATE_FORMAT = "%Y-%m-%dT%H:%MZ"


def _format_date(value: datetime.date) -> str:
    return datetime.datetime(value.year, value.month, value.day).strftime(_DATE_FORMAT)


def _parse_date(text: str) -> datetime.date:
    return datetime.datetime.strptime(text, _DATE_FORMAT).date()


def _entry_to_item(entry: CveEntry) -> dict[str, Any]:
    item: dict[str, Any] = {
        "cve": {
            "data_type": "CVE",
            "data_format": "MITRE",
            "data_version": "4.0",
            "CVE_data_meta": {"ID": entry.cve_id, "ASSIGNER": "cve@mitre.org"},
            "problemtype": {
                "problemtype_data": [
                    {
                        "description": [
                            {"lang": "en", "value": cwe_id}
                            for cwe_id in entry.cwe_ids
                        ]
                    }
                ]
            },
            "references": {
                "reference_data": [
                    {"url": ref.url, "tags": list(ref.tags)}
                    for ref in entry.references
                ]
            },
            "description": {
                "description_data": [
                    {"lang": "en", "value": text} for text in entry.descriptions
                ]
            },
        },
        "configurations": {
            "CVE_data_version": "4.0",
            "nodes": [
                {
                    "operator": "OR",
                    "cpe_match": [
                        {
                            "vulnerable": True,
                            "cpe23Uri": bind_to_formatted_string(cpe),
                        }
                        for cpe in entry.cpes
                    ],
                }
            ]
            if entry.cpes
            else [],
        },
        "impact": {},
        "publishedDate": _format_date(entry.published),
    }
    if entry.modified is not None:
        item["lastModifiedDate"] = _format_date(entry.modified)
    if entry.cvss_v2 is not None:
        scores = score_v2(entry.cvss_v2)
        item["impact"]["baseMetricV2"] = {
            "cvssV2": {
                "version": "2.0",
                "vectorString": v2_vector_string(entry.cvss_v2),
                "baseScore": scores.base,
            },
            "severity": entry.v2_severity.value if entry.v2_severity else None,
            "impactScore": scores.impact,
            "exploitabilityScore": scores.exploitability,
        }
    if entry.cvss_v3 is not None:
        scores = score_v3(entry.cvss_v3)
        item["impact"]["baseMetricV3"] = {
            "cvssV3": {
                "version": "3.1",
                "vectorString": v3_vector_string(entry.cvss_v3),
                "baseScore": scores.base,
                "baseSeverity": entry.v3_severity.value if entry.v3_severity else None,
            },
            "impactScore": scores.impact,
            "exploitabilityScore": scores.exploitability,
        }
    return item


def _lenient_metric(impact: dict[str, Any], block_key: str, metric_key: str, parser):
    """Parse one ``impact`` metric, degrading malformed CVSS to absent.

    Real feed exports (and the adversarial generator) contain items
    whose ``vectorString`` is truncated, garbled, or not a string at
    all; a bad severity vector must cost that one field, not abort the
    whole snapshot parse.  Dropped vectors are counted under the
    ``feed.malformed_cvss`` perf counter.
    """
    if block_key not in impact:
        return None
    try:
        return parser(impact[block_key][metric_key]["vectorString"])
    except (AttributeError, KeyError, TypeError, ValueError):
        perf.add_counter("feed.malformed_cvss", 1)
        return None


def _item_to_entry(item: dict[str, Any]) -> CveEntry:
    cve = item["cve"]
    cve_id = cve["CVE_data_meta"]["ID"]
    descriptions = tuple(
        block["value"] for block in cve["description"]["description_data"]
    )
    references = tuple(
        Reference(url=block["url"], tags=tuple(block.get("tags", ())))
        for block in cve.get("references", {}).get("reference_data", ())
    )
    cwe_ids: list[str] = []
    for ptype in cve.get("problemtype", {}).get("problemtype_data", ()):
        for block in ptype.get("description", ()):
            value = block.get("value")
            if value:
                cwe_ids.append(value)
    cpes = []
    for node in item.get("configurations", {}).get("nodes", ()):
        for match in node.get("cpe_match", ()):
            uri = match.get("cpe23Uri") or match.get("cpe22Uri")
            if uri:
                cpes.append(parse_cpe(uri))
    impact = item.get("impact", {})
    cvss_v2 = _lenient_metric(impact, "baseMetricV2", "cvssV2", parse_v2_vector)
    cvss_v3 = _lenient_metric(impact, "baseMetricV3", "cvssV3", parse_v3_vector)
    modified = None
    if "lastModifiedDate" in item:
        modified = _parse_date(item["lastModifiedDate"])
    return CveEntry(
        cve_id=cve_id,
        published=_parse_date(item["publishedDate"]),
        descriptions=descriptions,
        references=references,
        cwe_ids=tuple(cwe_ids),
        cvss_v2=cvss_v2,
        cvss_v3=cvss_v3,
        cpes=tuple(cpes),
        modified=modified,
    )


def entries_to_feed(entries: list[CveEntry]) -> dict[str, Any]:
    """Serialise entries into an NVD JSON feed document."""
    return {
        "CVE_data_type": "CVE",
        "CVE_data_format": "MITRE",
        "CVE_data_version": "4.0",
        "CVE_data_numberOfCVEs": str(len(entries)),
        "CVE_Items": [_entry_to_item(entry) for entry in entries],
    }


def entries_from_feed(feed: dict[str, Any]) -> list[CveEntry]:
    """Parse an NVD JSON feed document into entries."""
    if feed.get("CVE_data_type") != "CVE":
        raise ValueError("not an NVD JSON feed (CVE_data_type != 'CVE')")
    return [_item_to_entry(item) for item in feed.get("CVE_Items", ())]


def save_feed(entries: list[CveEntry], path: str | pathlib.Path) -> None:
    """Write entries as a feed file; ``.gz`` paths are gzip-compressed."""
    path = pathlib.Path(path)
    document = json.dumps(entries_to_feed(entries), indent=None)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(document)
    else:
        path.write_text(document, encoding="utf-8")


def load_feed(path: str | pathlib.Path) -> list[CveEntry]:
    """Read a feed file written by :func:`save_feed` (or NVD itself)."""
    path = pathlib.Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            feed = json.load(handle)
    else:
        feed = json.loads(path.read_text(encoding="utf-8"))
    return entries_from_feed(feed)
