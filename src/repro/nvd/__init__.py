"""NVD substrate: CVE data model, JSON feed serialisation, snapshot store."""

from repro.nvd.models import CveEntry, Reference
from repro.nvd.feed import entries_from_feed, entries_to_feed, load_feed, save_feed
from repro.nvd.store import NvdSnapshot, SnapshotStats

__all__ = [
    "CveEntry",
    "Reference",
    "NvdSnapshot",
    "SnapshotStats",
    "entries_from_feed",
    "entries_to_feed",
    "load_feed",
    "save_feed",
]
