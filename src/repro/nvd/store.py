"""In-memory NVD snapshot with query indices.

The paper's study operates on "a snapshot of NVD captured on May 21,
2018" (§3).  :class:`NvdSnapshot` is that snapshot as an object: it
indexes entries by id, year, vendor, product, and CWE, exposes the §3
scale statistics, and supports the name-remapping operation the
cleaning pipeline applies.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Iterator

from repro.cwe import is_sentinel
from repro.nvd.models import CveEntry

__all__ = ["NvdSnapshot", "SnapshotStats"]


@dataclasses.dataclass(frozen=True, slots=True)
class SnapshotStats:
    """§3-style scale summary of a snapshot."""

    n_cves: int
    n_vendors: int
    n_products: int
    n_cwe_types: int
    n_with_v3: int
    n_with_v2: int
    n_references: int
    year_range: tuple[int, int]


class NvdSnapshot:
    """An immutable collection of CVE entries with lookup indices."""

    def __init__(self, entries: Iterable[CveEntry]) -> None:
        self._entries: dict[str, CveEntry] = {}
        for entry in entries:
            if entry.cve_id in self._entries:
                raise ValueError(f"duplicate CVE id {entry.cve_id}")
            self._entries[entry.cve_id] = entry
        self._by_vendor: dict[str, list[str]] | None = None
        self._by_product: dict[str, list[str]] | None = None
        self._by_year: dict[int, list[str]] | None = None
        self._by_cwe: dict[str, list[str]] | None = None

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CveEntry]:
        return iter(self._entries.values())

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._entries

    def get(self, cve_id: str) -> CveEntry | None:
        return self._entries.get(cve_id)

    def __getitem__(self, cve_id: str) -> CveEntry:
        return self._entries[cve_id]

    @property
    def entries(self) -> list[CveEntry]:
        return list(self._entries.values())

    # -- indices --------------------------------------------------------------

    def _vendor_index(self) -> dict[str, list[str]]:
        if self._by_vendor is None:
            index: dict[str, list[str]] = {}
            for entry in self:
                for vendor in entry.vendors:
                    index.setdefault(vendor, []).append(entry.cve_id)
            self._by_vendor = index
        return self._by_vendor

    def _product_index(self) -> dict[str, list[str]]:
        if self._by_product is None:
            index: dict[str, list[str]] = {}
            for entry in self:
                for product in entry.products:
                    index.setdefault(product, []).append(entry.cve_id)
            self._by_product = index
        return self._by_product

    def _year_index(self) -> dict[int, list[str]]:
        if self._by_year is None:
            index: dict[int, list[str]] = {}
            for entry in self:
                index.setdefault(entry.published.year, []).append(entry.cve_id)
            self._by_year = index
        return self._by_year

    def _cwe_index(self) -> dict[str, list[str]]:
        if self._by_cwe is None:
            index: dict[str, list[str]] = {}
            for entry in self:
                for cwe_id in entry.cwe_ids:
                    index.setdefault(cwe_id, []).append(entry.cve_id)
            self._by_cwe = index
        return self._by_cwe

    # -- queries ----------------------------------------------------------------

    def by_vendor(self, vendor: str) -> list[CveEntry]:
        """All entries whose CPE list names ``vendor``."""
        return [self._entries[i] for i in self._vendor_index().get(vendor, ())]

    def by_product(self, product: str) -> list[CveEntry]:
        """All entries whose CPE list names ``product``."""
        return [self._entries[i] for i in self._product_index().get(product, ())]

    def by_publication_year(self, year: int) -> list[CveEntry]:
        """All entries published (added to NVD) in ``year``."""
        return [self._entries[i] for i in self._year_index().get(year, ())]

    def by_cwe(self, cwe_id: str) -> list[CveEntry]:
        """All entries labelled with ``cwe_id`` (sentinels allowed)."""
        return [self._entries[i] for i in self._cwe_index().get(cwe_id, ())]

    def vendors(self) -> list[str]:
        """All distinct vendor names."""
        return sorted(self._vendor_index())

    def products(self) -> list[str]:
        """All distinct product names."""
        return sorted(self._product_index())

    def vendor_cve_counts(self) -> dict[str, int]:
        """Vendor → number of associated CVEs."""
        return {vendor: len(ids) for vendor, ids in self._vendor_index().items()}

    def vendor_product_counts(self) -> dict[str, int]:
        """Vendor → number of distinct products listed under it."""
        pairs: dict[str, set[str]] = {}
        for entry in self:
            for vendor, product in entry.vendor_products():
                pairs.setdefault(vendor, set()).add(product)
        return {vendor: len(products) for vendor, products in pairs.items()}

    def product_cve_counts(self) -> dict[tuple[str, str], int]:
        """(vendor, product) → number of associated CVEs."""
        counts: dict[tuple[str, str], int] = {}
        for entry in self:
            for pair in entry.vendor_products():
                counts[pair] = counts.get(pair, 0) + 1
        return counts

    def with_v3(self) -> list[CveEntry]:
        """Entries carrying a CVSS v3 vector (the ground-truth pool)."""
        return [entry for entry in self if entry.has_v3]

    def v2_only(self) -> list[CveEntry]:
        """Entries with a v2 vector but no v3 (the prediction targets)."""
        return [entry for entry in self if entry.cvss_v2 and not entry.has_v3]

    def missing_cwe(self) -> list[CveEntry]:
        """Entries whose every CWE label is a sentinel (or absent)."""
        return [
            entry
            for entry in self
            if all(is_sentinel(label) for label in entry.cwe_ids) or not entry.cwe_ids
        ]

    def filter(self, predicate: Callable[[CveEntry], bool]) -> "NvdSnapshot":
        """A new snapshot with the entries satisfying ``predicate``."""
        return NvdSnapshot(entry for entry in self if predicate(entry))

    def map_entries(self, transform: Callable[[CveEntry], CveEntry]) -> "NvdSnapshot":
        """A new snapshot with ``transform`` applied to every entry."""
        return NvdSnapshot(transform(entry) for entry in self)

    # -- statistics -----------------------------------------------------------

    def stats(self) -> SnapshotStats:
        """The §3 scale summary."""
        years = [entry.published.year for entry in self]
        concrete_cwes = {
            cwe_id
            for entry in self
            for cwe_id in entry.cwe_ids
            if not is_sentinel(cwe_id)
        }
        return SnapshotStats(
            n_cves=len(self),
            n_vendors=len(self._vendor_index()),
            n_products=len(self._product_index()),
            n_cwe_types=len(concrete_cwes),
            n_with_v3=sum(1 for entry in self if entry.has_v3),
            n_with_v2=sum(1 for entry in self if entry.cvss_v2 is not None),
            n_references=sum(len(entry.references) for entry in self),
            year_range=(min(years), max(years)) if years else (0, 0),
        )
