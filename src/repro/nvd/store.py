"""In-memory NVD snapshot with query indices.

The paper's study operates on "a snapshot of NVD captured on May 21,
2018" (§3).  :class:`NvdSnapshot` is that snapshot as an object: it
indexes entries by id, year, vendor, product, and CWE, exposes the §3
scale statistics, and supports the name-remapping operation the
cleaning pipeline applies.

All indices are built lazily in **one shared pass** over the entries:
the first query that needs any index materialises all of them (vendor,
product, year, CWE, and vendor→product pair counts) together with the
scalar statistics, so repeated ``stats()`` / count queries never
re-scan the snapshot.  Name-only remaps (vendor/product consolidation)
reuse the indices that renames cannot change instead of rebuilding
everything.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Iterator

from repro.cwe import is_sentinel
from repro.nvd.models import CveEntry

__all__ = ["NvdSnapshot", "SnapshotStats"]


@dataclasses.dataclass(frozen=True, slots=True)
class SnapshotStats:
    """§3-style scale summary of a snapshot."""

    n_cves: int
    n_vendors: int
    n_products: int
    n_cwe_types: int
    n_with_v3: int
    n_with_v2: int
    n_references: int
    year_range: tuple[int, int]

    def as_dict(self) -> dict[str, object]:
        """The machine-readable shape shared by ``python -m repro stats
        --json`` and the query service's ``/v1/stats`` endpoint."""
        return {
            "n_cves": self.n_cves,
            "n_vendors": self.n_vendors,
            "n_products": self.n_products,
            "n_cwe_types": self.n_cwe_types,
            "n_with_v3": self.n_with_v3,
            "n_with_v2": self.n_with_v2,
            "n_references": self.n_references,
            "year_range": [self.year_range[0], self.year_range[1]],
        }


@dataclasses.dataclass
class _BaseIndices:
    """Indices and scalars that renaming vendors/products cannot change."""

    by_year: dict[int, list[str]]
    by_cwe: dict[str, list[str]]
    n_cwe_types: int
    n_with_v3: int
    n_with_v2: int
    n_references: int
    year_range: tuple[int, int]


@dataclasses.dataclass
class _NameIndices:
    """Indices keyed by vendor/product names."""

    by_vendor: dict[str, list[str]]
    by_product: dict[str, list[str]]
    pair_counts: dict[tuple[str, str], int]


class NvdSnapshot:
    """An immutable collection of CVE entries with lookup indices."""

    def __init__(self, entries: Iterable[CveEntry]) -> None:
        self._entries: dict[str, CveEntry] = {}
        for entry in entries:
            if entry.cve_id in self._entries:
                raise ValueError(f"duplicate CVE id {entry.cve_id}")
            self._entries[entry.cve_id] = entry
        self._entry_list: list[CveEntry] | None = None
        self._base: _BaseIndices | None = None
        self._names: _NameIndices | None = None
        self._stats: SnapshotStats | None = None

    @classmethod
    def _from_trusted(cls, entries: dict[str, CveEntry]) -> "NvdSnapshot":
        """Build a snapshot from an id→entry dict known to be consistent.

        Used by :meth:`map_entries` when the transform preserves CVE
        ids, so the duplicate-id validation of ``__init__`` is already
        guaranteed by the source snapshot.
        """
        snapshot = cls.__new__(cls)
        snapshot._entries = entries
        snapshot._entry_list = None
        snapshot._base = None
        snapshot._names = None
        snapshot._stats = None
        return snapshot

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CveEntry]:
        return iter(self.entries)

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._entries

    def get(self, cve_id: str) -> CveEntry | None:
        return self._entries.get(cve_id)

    def __getitem__(self, cve_id: str) -> CveEntry:
        return self._entries[cve_id]

    @property
    def entries(self) -> list[CveEntry]:
        """The entries as a list, cached (hot loops iterate it freely)."""
        if self._entry_list is None:
            self._entry_list = list(self._entries.values())
        return self._entry_list

    # -- indices --------------------------------------------------------------

    def _build_indices(self) -> None:
        """Build every missing index group in one shared pass."""
        need_base = self._base is None
        need_names = self._names is None
        if not (need_base or need_names):
            return
        if need_base:
            by_year: dict[int, list[str]] = {}
            by_cwe: dict[str, list[str]] = {}
            concrete_cwes: set[str] = set()
            n_with_v3 = n_with_v2 = n_references = 0
            min_year = max_year = 0
        if need_names:
            by_vendor: dict[str, list[str]] = {}
            by_product: dict[str, list[str]] = {}
            pair_counts: dict[tuple[str, str], int] = {}
        for entry in self.entries:
            cve_id = entry.cve_id
            if need_base:
                year = entry.published.year
                by_year.setdefault(year, []).append(cve_id)
                if min_year == 0 or year < min_year:
                    min_year = year
                if year > max_year:
                    max_year = year
                for cwe_id in entry.cwe_ids:
                    by_cwe.setdefault(cwe_id, []).append(cve_id)
                    if not is_sentinel(cwe_id):
                        concrete_cwes.add(cwe_id)
                if entry.cvss_v3 is not None:
                    n_with_v3 += 1
                if entry.cvss_v2 is not None:
                    n_with_v2 += 1
                n_references += len(entry.references)
            if need_names:
                for vendor in entry.vendors:
                    by_vendor.setdefault(vendor, []).append(cve_id)
                for product in entry.products:
                    by_product.setdefault(product, []).append(cve_id)
                for pair in entry.vendor_products():
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
        if need_base:
            self._base = _BaseIndices(
                by_year=by_year,
                by_cwe=by_cwe,
                n_cwe_types=len(concrete_cwes),
                n_with_v3=n_with_v3,
                n_with_v2=n_with_v2,
                n_references=n_references,
                year_range=(min_year, max_year),
            )
        if need_names:
            self._names = _NameIndices(
                by_vendor=by_vendor,
                by_product=by_product,
                pair_counts=pair_counts,
            )

    def _vendor_index(self) -> dict[str, list[str]]:
        self._build_indices()
        assert self._names is not None
        return self._names.by_vendor

    def _product_index(self) -> dict[str, list[str]]:
        self._build_indices()
        assert self._names is not None
        return self._names.by_product

    def _year_index(self) -> dict[int, list[str]]:
        self._build_indices()
        assert self._base is not None
        return self._base.by_year

    def _cwe_index(self) -> dict[str, list[str]]:
        self._build_indices()
        assert self._base is not None
        return self._base.by_cwe

    def _pair_counts(self) -> dict[tuple[str, str], int]:
        self._build_indices()
        assert self._names is not None
        return self._names.pair_counts

    # -- queries ----------------------------------------------------------------

    def by_vendor(self, vendor: str) -> list[CveEntry]:
        """All entries whose CPE list names ``vendor``."""
        return [self._entries[i] for i in self._vendor_index().get(vendor, ())]

    def by_product(self, product: str) -> list[CveEntry]:
        """All entries whose CPE list names ``product``."""
        return [self._entries[i] for i in self._product_index().get(product, ())]

    def by_publication_year(self, year: int) -> list[CveEntry]:
        """All entries published (added to NVD) in ``year``."""
        return [self._entries[i] for i in self._year_index().get(year, ())]

    def by_cwe(self, cwe_id: str) -> list[CveEntry]:
        """All entries labelled with ``cwe_id`` (sentinels allowed)."""
        return [self._entries[i] for i in self._cwe_index().get(cwe_id, ())]

    def vendors(self) -> list[str]:
        """All distinct vendor names."""
        return sorted(self._vendor_index())

    def products(self) -> list[str]:
        """All distinct product names."""
        return sorted(self._product_index())

    def vendor_cve_counts(self) -> dict[str, int]:
        """Vendor → number of associated CVEs."""
        return {vendor: len(ids) for vendor, ids in self._vendor_index().items()}

    def vendor_product_counts(self) -> dict[str, int]:
        """Vendor → number of distinct products listed under it."""
        counts: dict[str, int] = {}
        for vendor, _ in self._pair_counts():
            counts[vendor] = counts.get(vendor, 0) + 1
        return counts

    def product_cve_counts(self) -> dict[tuple[str, str], int]:
        """(vendor, product) → number of associated CVEs."""
        return dict(self._pair_counts())

    def vendor_products(self) -> dict[str, set[str]]:
        """Vendor → the set of product names listed under it."""
        products: dict[str, set[str]] = {}
        for vendor, product in self._pair_counts():
            products.setdefault(vendor, set()).add(product)
        return products

    def with_v3(self) -> list[CveEntry]:
        """Entries carrying a CVSS v3 vector (the ground-truth pool)."""
        return [entry for entry in self.entries if entry.has_v3]

    def v2_only(self) -> list[CveEntry]:
        """Entries with a v2 vector but no v3 (the prediction targets)."""
        return [
            entry
            for entry in self.entries
            if entry.cvss_v2 is not None and not entry.has_v3
        ]

    def missing_cwe(self) -> list[CveEntry]:
        """Entries whose every CWE label is a sentinel (or absent)."""
        return [
            entry
            for entry in self.entries
            if all(is_sentinel(label) for label in entry.cwe_ids) or not entry.cwe_ids
        ]

    def filter(self, predicate: Callable[[CveEntry], bool]) -> "NvdSnapshot":
        """A new snapshot with the entries satisfying ``predicate``."""
        return NvdSnapshot(entry for entry in self.entries if predicate(entry))

    def merge(self, entries: Iterable[CveEntry]) -> "NvdSnapshot":
        """A new snapshot with ``entries`` upserted by CVE id.

        Existing ids are replaced in place (snapshot order preserved);
        new ids append in input order.  The incremental-ingest path
        builds every new artifact version through this, so a delta feed
        updates answers without re-cleaning the whole population.
        """
        merged = dict(self._entries)
        for entry in entries:
            merged[entry.cve_id] = entry
        return NvdSnapshot._from_trusted(merged)

    def map_entries(
        self,
        transform: Callable[[CveEntry], CveEntry],
        *,
        names_only: bool = False,
    ) -> "NvdSnapshot":
        """A new snapshot with ``transform`` applied to every entry.

        ``names_only`` declares that ``transform`` only rewrites CPE
        vendor/product names — ids, dates, CWE labels, references and
        CVSS vectors are untouched.  The new snapshot then skips the
        duplicate-id validation and inherits the name-invariant indices
        (year, CWE, scalar statistics) instead of rebuilding them.
        """
        if not names_only:
            return NvdSnapshot(transform(entry) for entry in self.entries)
        mapped = {
            cve_id: transform(entry) for cve_id, entry in self._entries.items()
        }
        snapshot = NvdSnapshot._from_trusted(mapped)
        snapshot._base = self._base  # shared: read-only once built
        return snapshot

    # -- statistics -----------------------------------------------------------

    def stats(self) -> SnapshotStats:
        """The §3 scale summary (computed once from the shared indices)."""
        if self._stats is None:
            self._build_indices()
            assert self._base is not None and self._names is not None
            base = self._base
            self._stats = SnapshotStats(
                n_cves=len(self),
                n_vendors=len(self._names.by_vendor),
                n_products=len(self._names.by_product),
                n_cwe_types=base.n_cwe_types,
                n_with_v3=base.n_with_v3,
                n_with_v2=base.n_with_v2,
                n_references=base.n_references,
                year_range=base.year_range if len(self) else (0, 0),
            )
        return self._stats
