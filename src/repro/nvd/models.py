"""Data model for NVD CVE entries.

§3 of the paper enumerates the fields of an NVD entry: the CVE id, the
publication date, the CWE type(s), the CVSS v2/v3 severity, the list of
affected vendors and products (CPE), free-form descriptions, and
optional reference URLs.  :class:`CveEntry` carries exactly those.
"""

from __future__ import annotations

import dataclasses
import datetime
import re

from repro.cpe import CpeName
from repro.cvss import (
    CvssV2Metrics,
    CvssV3Metrics,
    Severity,
    score_v2,
    score_v3,
    severity_v2,
    severity_v3,
)

__all__ = ["CveEntry", "Reference"]

_CVE_ID_RE = re.compile(r"CVE-(\d{4})-(\d{4,})")


@dataclasses.dataclass(frozen=True, slots=True)
class Reference:
    """A reference URL attached to a CVE (advisory, bug report, ...)."""

    url: str
    tags: tuple[str, ...] = ()

    @property
    def domain(self) -> str:
        """The registrable host of the URL (``https://a.b.c/x`` → ``a.b.c``)."""
        without_scheme = re.sub(r"^[a-z][a-z0-9+.-]*://", "", self.url, flags=re.I)
        host = without_scheme.split("/", 1)[0].split("?", 1)[0]
        return host.split(":", 1)[0].lower()


@dataclasses.dataclass(frozen=True, slots=True)
class CveEntry:
    """One NVD vulnerability record."""

    cve_id: str
    published: datetime.date
    descriptions: tuple[str, ...]
    references: tuple[Reference, ...] = ()
    cwe_ids: tuple[str, ...] = ()
    cvss_v2: CvssV2Metrics | None = None
    cvss_v3: CvssV3Metrics | None = None
    cpes: tuple[CpeName, ...] = ()
    modified: datetime.date | None = None

    def __post_init__(self) -> None:
        if not _CVE_ID_RE.fullmatch(self.cve_id):
            raise ValueError(f"malformed CVE id {self.cve_id!r}")

    # -- identity ---------------------------------------------------------

    @property
    def year(self) -> int:
        """The year encoded in the CVE id (not the publication year)."""
        match = _CVE_ID_RE.fullmatch(self.cve_id)
        assert match is not None
        return int(match.group(1))

    # -- CPE views --------------------------------------------------------

    @property
    def vendors(self) -> tuple[str, ...]:
        """Distinct vendor names, in first-appearance order."""
        seen: dict[str, None] = {}
        for cpe in self.cpes:
            if isinstance(cpe.vendor, str):
                seen.setdefault(cpe.vendor)
        return tuple(seen)

    @property
    def products(self) -> tuple[str, ...]:
        """Distinct (vendor, product) pairs flattened to product names."""
        seen: dict[str, None] = {}
        for cpe in self.cpes:
            if isinstance(cpe.product, str):
                seen.setdefault(cpe.product)
        return tuple(seen)

    def vendor_products(self) -> tuple[tuple[str, str], ...]:
        """Distinct (vendor, product) pairs in first-appearance order."""
        seen: dict[tuple[str, str], None] = {}
        for cpe in self.cpes:
            if isinstance(cpe.vendor, str) and isinstance(cpe.product, str):
                seen.setdefault((cpe.vendor, cpe.product))
        return tuple(seen)

    # -- severity views ---------------------------------------------------

    @property
    def v2_score(self) -> float | None:
        return score_v2(self.cvss_v2).base if self.cvss_v2 else None

    @property
    def v3_score(self) -> float | None:
        return score_v3(self.cvss_v3).base if self.cvss_v3 else None

    @property
    def v2_severity(self) -> Severity | None:
        score = self.v2_score
        return severity_v2(score) if score is not None else None

    @property
    def v3_severity(self) -> Severity | None:
        score = self.v3_score
        return severity_v3(score) if score is not None else None

    @property
    def has_v3(self) -> bool:
        return self.cvss_v3 is not None

    # -- description views --------------------------------------------------

    @property
    def description(self) -> str:
        """The primary (first) description, or empty string."""
        return self.descriptions[0] if self.descriptions else ""

    def all_description_text(self) -> str:
        """All descriptions joined — the surface the CWE regex scans."""
        return "\n".join(self.descriptions)

    # -- mutation helpers (entries are frozen; return modified copies) ------

    def replace(self, **changes: object) -> "CveEntry":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
