"""Synthetic SecurityFocus and SecurityTracker vendor tables.

§4.2 applies the NVD-derived vendor mapping to two other vulnerability
databases: SecurityFocus (24,760 vendor names, 8% found inconsistent)
and SecurityTracker (4,151 names, 3% inconsistent).  The paper only
needs each database's vendor-name column, so that is what we model:
each database draws from the same vendor universe as the NVD (plus its
own local names) and includes inconsistent variants at its own rate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.synth.names import VendorSpec

__all__ = ["OtherDatabase", "generate_securityfocus", "generate_securitytracker"]


@dataclasses.dataclass
class OtherDatabase:
    """A vulnerability database reduced to its vendor-name column."""

    name: str
    vendor_names: list[str]
    #: ground truth: variant name → canonical name, for scoring.
    truth_map: dict[str, str]

    def distinct_vendors(self) -> int:
        return len(set(self.vendor_names))


def _build(
    name: str,
    universe: list[VendorSpec],
    nvd_vendor_map: dict[str, str],
    size_ratio: float,
    variant_rate: float,
    extra_local_ratio: float,
    seed: int,
) -> OtherDatabase:
    """Assemble a database sharing the NVD universe.

    ``size_ratio`` scales the vendor count relative to the NVD's;
    ``variant_rate`` is the fraction of included names that are
    inconsistent variants; ``extra_local_ratio`` adds names unique to
    this database (vendors the NVD never listed).
    """
    rng = np.random.default_rng(seed)
    target = max(10, int(len(universe) * size_ratio))
    canonical_names = [spec.name for spec in universe]
    chosen = rng.choice(
        len(canonical_names), size=min(target, len(canonical_names)), replace=False
    )
    names = [canonical_names[int(index)] for index in chosen]

    # Inconsistent variants: reuse the NVD's variant universe, since a
    # shared vendor tends to be misspelled the same ways everywhere.
    variants = list(nvd_vendor_map.items())
    rng.shuffle(variants)
    n_variants = int(len(names) * variant_rate)
    truth_map: dict[str, str] = {}
    for variant, canonical in variants[:n_variants]:
        names.append(variant)
        truth_map[variant] = canonical

    n_local = int(len(names) * extra_local_ratio)
    names.extend(f"{name.lower()}-local-vendor-{index:05d}" for index in range(n_local))
    rng.shuffle(names)
    return OtherDatabase(name=name, vendor_names=names, truth_map=truth_map)


def generate_securityfocus(
    universe: list[VendorSpec],
    nvd_vendor_map: dict[str, str],
    seed: int = 101,
) -> OtherDatabase:
    """SecurityFocus: larger than the NVD, ≈8% inconsistent names."""
    return _build(
        "SecurityFocus",
        universe,
        nvd_vendor_map,
        size_ratio=1.15,
        variant_rate=0.085,
        extra_local_ratio=0.12,
        seed=seed,
    )


def generate_securitytracker(
    universe: list[VendorSpec],
    nvd_vendor_map: dict[str, str],
    seed: int = 102,
) -> OtherDatabase:
    """SecurityTracker: much smaller, ≈3% inconsistent names."""
    return _build(
        "SecurityTracker",
        universe,
        nvd_vendor_map,
        size_ratio=0.20,
        variant_rate=0.028,
        extra_local_ratio=0.05,
        seed=seed,
    )
