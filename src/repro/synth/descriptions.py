"""CWE-conditioned CVE description generation.

§4.4 observes that "the CVE description outlines the traces of a
vulnerability, which can be used to determine the type of
vulnerability" — the description classifier only works because each
weakness family has characteristic phrasing.  These templates give each
CWE family a distinct vocabulary (mirroring real NVD phrasing) so the
encoder + k-NN pipeline faces the same signal the paper's did.

Evaluator comments are modelled too: a secondary description of the
form ``"Per the evaluator: CWE-79: Improper Neutralization ..."`` —
the surface the ``CWE-[0-9]*`` regex fix (§4.4) mines.
"""

from __future__ import annotations

import numpy as np

from repro.cwe import CATALOG

__all__ = ["describe", "evaluator_comment"]

# Family templates.  Placeholders: {product}, {vendor}, {version},
# {component}, {parameter}, {file}.
_TEMPLATES: dict[str, tuple[str, ...]] = {
    "CWE-119": (
        "Buffer overflow in {component} in {vendor} {product} {version} allows "
        "remote attackers to execute arbitrary code via a long {parameter} value.",
        "Heap-based buffer overflow in {product} {version} allows attackers to "
        "cause a denial of service (memory corruption) or possibly execute "
        "arbitrary code via a crafted {file} file.",
        "Stack-based buffer overflow in the {component} function in {product} "
        "{version} allows remote attackers to execute arbitrary code via a "
        "crafted packet.",
    ),
    "CWE-120": (
        "Buffer copy without size check in {component} of {product} {version} "
        "lets remote attackers overflow a buffer via a long {parameter} string.",
    ),
    "CWE-125": (
        "Out-of-bounds read in {component} in {product} {version} allows "
        "remote attackers to obtain sensitive memory contents or cause a crash "
        "via a crafted {file} file.",
    ),
    "CWE-787": (
        "Out-of-bounds write in {component} of {vendor} {product} {version} "
        "allows attackers to execute arbitrary code via a malformed {file} file.",
    ),
    "CWE-89": (
        "SQL injection vulnerability in {file} in {vendor} {product} {version} "
        "allows remote attackers to execute arbitrary SQL commands via the "
        "{parameter} parameter.",
        "Multiple SQL injection vulnerabilities in {product} {version} allow "
        "remote authenticated users to execute arbitrary SQL commands via the "
        "{parameter} parameter to {file}.",
    ),
    "CWE-79": (
        "Cross-site scripting (XSS) vulnerability in {file} in {vendor} "
        "{product} {version} allows remote attackers to inject arbitrary web "
        "script or HTML via the {parameter} parameter.",
        "Multiple cross-site scripting (XSS) vulnerabilities in {product} "
        "{version} allow remote attackers to inject arbitrary web script via "
        "crafted {parameter} fields.",
    ),
    "CWE-352": (
        "Cross-site request forgery (CSRF) vulnerability in {file} in {product} "
        "{version} allows remote attackers to hijack the authentication of "
        "administrators for requests that change the {parameter} setting.",
    ),
    "CWE-22": (
        "Directory traversal vulnerability in {file} in {vendor} {product} "
        "{version} allows remote attackers to read arbitrary files via a .. "
        "(dot dot) in the {parameter} parameter.",
        "Path traversal in {component} of {product} {version} allows attackers "
        "to write to arbitrary files via crafted sequences in the {parameter} "
        "field.",
    ),
    "CWE-94": (
        "Code injection vulnerability in {component} in {product} {version} "
        "allows remote attackers to execute arbitrary PHP code via a crafted "
        "{parameter} parameter.",
        "Eval injection in {file} in {product} {version} allows attackers to "
        "execute arbitrary code via the {parameter} parameter.",
    ),
    "CWE-78": (
        "OS command injection in {component} in {vendor} {product} {version} "
        "allows remote attackers to execute arbitrary commands via shell "
        "metacharacters in the {parameter} parameter.",
    ),
    "CWE-77": (
        "Command injection vulnerability in {component} of {product} {version} "
        "allows authenticated users to run arbitrary commands via the "
        "{parameter} field.",
    ),
    "CWE-20": (
        "Improper input validation in {component} in {vendor} {product} "
        "{version} allows remote attackers to cause a denial of service via a "
        "malformed {parameter} value.",
        "{product} {version} does not properly validate {parameter} input, "
        "which allows remote attackers to bypass intended restrictions.",
    ),
    "CWE-200": (
        "Information disclosure in {component} of {vendor} {product} {version} "
        "allows remote attackers to obtain sensitive information via a crafted "
        "request to {file}.",
        "{product} {version} exposes sensitive configuration data to "
        "unauthenticated users via the {parameter} endpoint.",
    ),
    "CWE-264": (
        "{vendor} {product} {version} does not properly enforce permissions on "
        "{component}, which allows local users to gain privileges via a "
        "crafted application.",
        "Permission management error in {component} in {product} {version} "
        "allows local users to bypass access restrictions and gain privileges.",
    ),
    "CWE-284": (
        "Improper access control in {component} in {product} {version} allows "
        "remote attackers to access the {parameter} interface without "
        "authentication.",
    ),
    "CWE-285": (
        "Improper authorization in {component} of {vendor} {product} {version} "
        "allows remote authenticated users to perform privileged {parameter} "
        "operations.",
    ),
    "CWE-287": (
        "Improper authentication in {component} in {product} {version} allows "
        "remote attackers to bypass login via a crafted {parameter} header.",
    ),
    "CWE-306": (
        "{product} {version} does not require authentication for the "
        "{component} interface, allowing remote attackers to perform "
        "administrative actions.",
    ),
    "CWE-255": (
        "{vendor} {product} {version} stores credentials for {component} in "
        "cleartext in {file}, which allows local users to obtain passwords.",
    ),
    "CWE-798": (
        "{product} {version} contains hard-coded credentials for the "
        "{component} account, which allows remote attackers to obtain "
        "administrative access.",
    ),
    "CWE-310": (
        "Cryptographic issue in {component} of {vendor} {product} {version}: "
        "a weak cipher is used to protect {parameter} data, allowing "
        "man-in-the-middle attackers to decrypt traffic.",
        "{product} {version} uses a predictable random number generator to "
        "create cryptographic keys, making sessions easier to spoof.",
    ),
    "CWE-399": (
        "Resource management error in {component} in {product} {version} "
        "allows remote attackers to cause a denial of service (memory "
        "consumption) via a large number of crafted requests.",
        "Memory leak in {component} of {product} {version} allows attackers "
        "to exhaust memory via repeated {parameter} requests.",
    ),
    "CWE-400": (
        "Uncontrolled resource consumption in {component} in {product} "
        "{version} allows remote attackers to cause a denial of service (CPU "
        "consumption) via a crafted {parameter}.",
    ),
    "CWE-416": (
        "Use-after-free vulnerability in {component} in {vendor} {product} "
        "{version} allows remote attackers to execute arbitrary code via a "
        "crafted {file} document that triggers premature object deletion.",
    ),
    "CWE-415": (
        "Double free vulnerability in {component} of {product} {version} "
        "allows attackers to execute arbitrary code via a malformed {file}.",
    ),
    "CWE-476": (
        "NULL pointer dereference in {component} in {product} {version} allows "
        "remote attackers to cause a denial of service (crash) via a crafted "
        "{file} file.",
    ),
    "CWE-189": (
        "Numeric error in {component} in {product} {version} allows remote "
        "attackers to cause a denial of service via a crafted {parameter} "
        "value that triggers an incorrect calculation.",
    ),
    "CWE-190": (
        "Integer overflow in {component} in {vendor} {product} {version} "
        "allows remote attackers to execute arbitrary code via a crafted "
        "{file} file that triggers a heap-based buffer overflow.",
    ),
    "CWE-369": (
        "Divide-by-zero error in {component} of {product} {version} allows "
        "attackers to cause a denial of service via a malformed {file}.",
    ),
    "CWE-362": (
        "Race condition in {component} in {vendor} {product} {version} allows "
        "local users to gain privileges via a crafted sequence of file "
        "operations on {file}.",
    ),
    "CWE-59": (
        "{product} {version} allows local users to overwrite arbitrary files "
        "via a symlink attack on the {file} temporary file.",
    ),
    "CWE-601": (
        "Open redirect vulnerability in {file} in {product} {version} allows "
        "remote attackers to redirect users to arbitrary web sites via the "
        "{parameter} parameter.",
    ),
    "CWE-611": (
        "XML external entity (XXE) vulnerability in {component} in {product} "
        "{version} allows remote attackers to read arbitrary files via a "
        "crafted XML document.",
    ),
    "CWE-502": (
        "{product} {version} deserializes untrusted data in {component}, "
        "which allows remote attackers to execute arbitrary code via a "
        "crafted serialized object.",
    ),
    "CWE-434": (
        "Unrestricted file upload vulnerability in {file} in {product} "
        "{version} allows remote attackers to execute arbitrary code by "
        "uploading a file with an executable extension.",
    ),
    "CWE-835": (
        "Infinite loop in {component} in {product} {version} allows remote "
        "attackers to cause a denial of service (CPU consumption) via a "
        "crafted {file} file with an unreachable exit condition.",
    ),
    "CWE-134": (
        "Format string vulnerability in {component} in {product} {version} "
        "allows attackers to execute arbitrary code via format string "
        "specifiers in the {parameter} argument.",
    ),
    "CWE-327": (
        "{product} {version} uses the broken {parameter} hash algorithm in "
        "{component}, which makes it easier for attackers to forge signatures.",
    ),
    "CWE-918": (
        "Server-side request forgery (SSRF) in {component} of {product} "
        "{version} allows remote attackers to send crafted requests to "
        "internal systems via the {parameter} parameter.",
    ),
}

_GENERIC = (
    "A vulnerability in {component} of {vendor} {product} {version} allows "
    "attackers to compromise the affected system via a crafted {parameter}.",
    "Unspecified vulnerability in {product} {version} allows remote attackers "
    "to affect confidentiality, integrity, and availability via unknown "
    "vectors related to {component}.",
)

_COMPONENTS = (
    "the login handler", "the session manager", "the parsing engine",
    "the admin console", "the HTTP service", "the file handler",
    "the template renderer", "the authentication module", "the search "
    "function", "the update mechanism", "the report generator",
    "the upload handler", "the configuration parser", "the RPC interface",
    "the image decoder", "the network stack", "the management interface",
)
_PARAMETERS = (
    "id", "user", "name", "query", "page", "file", "path", "action", "cmd",
    "lang", "category", "search", "title", "url", "token", "session",
    "username", "email", "sort", "filter",
)
_FILES = (
    "index.php", "login.php", "admin.php", "view.asp", "search.cgi",
    "config.xml", "report.jsp", "upload.php", "gallery.php", "profile.php",
    "document.pdf", "archive.zip", "image.png", "media.mp4", "input.xml",
)


def describe(
    cwe_id: str,
    vendor: str,
    product: str,
    version: str,
    rng: np.random.Generator,
) -> str:
    """Generate a primary description for a CVE of the given CWE type."""
    templates = _TEMPLATES.get(cwe_id, _GENERIC)
    template = templates[int(rng.integers(0, len(templates)))]
    return template.format(
        vendor=vendor.replace("_", " ").title(),
        product=product.replace("_", " ").title(),
        version=version,
        component=_COMPONENTS[int(rng.integers(0, len(_COMPONENTS)))],
        parameter=_PARAMETERS[int(rng.integers(0, len(_PARAMETERS)))],
        file=_FILES[int(rng.integers(0, len(_FILES)))],
    )


def evaluator_comment(cwe_id: str) -> str:
    """An evaluator description embedding the CWE id (the §4.4 surface).

    Example from the paper: CVE-2007-0838's evaluator description
    includes "CWE-835: Loop with Unreachable Exit Condition ('Infinite
    Loop')".
    """
    entry = CATALOG.get(cwe_id)
    name = entry.name if entry else "Unspecified Weakness"
    return f"Per the CVE evaluator: {cwe_id}: {name}."
