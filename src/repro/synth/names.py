"""Vendor and product name universe with inconsistency injection.

§4.2 catalogues how NVD names go inconsistent: misspellings
(microsoft/microsft), format variants (avast/avast!), abbreviations
(lan_management_system/lms), strict substrings (lynx/lynx_project),
products used as vendor names, separator variants
(internet-explorer/internet_explorer/"internet explorer"), and
single-character edits (tbe_banner_engine/the_banner_engine).

This module provides (a) a deterministic universe of vendors and their
products — anchored on the real names appearing in the paper's tables
so examples reproduce verbatim — and (b) variant generators for each
documented inconsistency class, used by the snapshot generator to
inject naming noise with known ground truth.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

__all__ = [
    "InconsistencyKind",
    "NameVariant",
    "VendorSpec",
    "abbreviate",
    "build_universe",
    "make_variant",
    "tokenize_name",
]


class InconsistencyKind(str, enum.Enum):
    """The §4.2 inconsistency classes."""

    SPECIAL_CHARS = "special-chars"  # avast / avast!
    TYPO = "typo"  # microsoft / microsft
    ABBREVIATION = "abbreviation"  # lan_management_system / lms
    SUFFIX = "suffix"  # lynx / lynx_project
    SEPARATOR = "separator"  # internet-explorer / internet_explorer
    CHAR_EDIT = "char-edit"  # tbe_banner_engine / the_banner_engine
    PRODUCT_AS_VENDOR = "product-as-vendor"  # microsoft / windows


@dataclasses.dataclass(frozen=True, slots=True)
class NameVariant:
    """An inconsistent spelling of a canonical name."""

    canonical: str
    variant: str
    kind: InconsistencyKind


@dataclasses.dataclass(frozen=True, slots=True)
class VendorSpec:
    """One vendor in the universe: canonical name, products, weight.

    ``weight`` drives the Zipf-like CVE allocation — top vendors like
    Microsoft absorb thousands of CVEs (Table 11) while the long tail
    gets one or two.
    """

    name: str
    products: tuple[str, ...]
    weight: float


# ---------------------------------------------------------------------------
# Anchored real names (from the paper's tables and examples).
# ---------------------------------------------------------------------------

#: (vendor, example products, relative weight).  Weights approximate the
#: Table 11 CVE share ordering.
_ANCHOR_VENDORS: list[tuple[str, tuple[str, ...], float]] = [
    ("microsoft", ("windows", "internet_explorer", "office", "exchange_server",
                   "windows_media_player", "edge", "sql_server", "sharepoint",
                   "visual_studio", ".net_framework"), 620.0),
    ("oracle", ("database_server", "mysql", "java", "solaris", "weblogic_server",
                "peoplesoft", "fusion_middleware", "virtualbox", "e-business_suite"), 530.0),
    ("apple", ("mac_os_x", "iphone_os", "safari", "itunes", "watchos", "tvos",
               "quicktime", "icloud"), 430.0),
    ("ibm", ("websphere_application_server", "db2", "aix", "lotus_notes",
             "rational_quality_manager", "tivoli_storage_manager", "mq"), 390.0),
    ("google", ("chrome", "android", "v8", "chrome_os"), 370.0),
    ("cisco", ("ios", "ios_xe", "asa", "unified_communications_manager", "webex",
               "firepower", "nx-os", "ucs-e160dp-m1_firmware",
               "ucs-e140dp-m1_firmware"), 345.0),
    ("adobe", ("flash_player", "acrobat", "acrobat_reader", "coldfusion",
               "photoshop", "air", "shockwave_player"), 270.0),
    ("linux", ("linux_kernel",), 214.0),
    ("debian", ("debian_linux", "openssl_package", "apt"), 205.0),
    ("redhat", ("enterprise_linux", "openshift", "jboss_enterprise_application_platform",
                "satellite", "openstack"), 203.0),
    ("hp", ("hp-ux", "openview", "system_management_homepage", "integrated_lights-out",
            "laserjet_printer", "procurve_switch", "officejet_printer",
            "pavilion_desktop", "elitebook_laptop"), 160.0),
    ("mozilla", ("firefox", "thunderbird", "seamonkey", "firefox_esr"), 150.0),
    ("canonical", ("ubuntu_linux",), 120.0),
    ("wordpress", ("wordpress",), 110.0),
    ("php", ("php",), 105.0),
    ("joomla", ("joomla%21",), 85.0),
    ("apache", ("http_server", "tomcat", "struts", "activemq", "httpd"), 140.0),
    ("intel", ("active_management_technology_firmware", "graphics_driver",
               "xeon_processor", "core_processor", "chipset_firmware"), 72.0),
    ("huawei", ("mate_9_firmware", "p10_firmware", "honor_firmware", "usg_firmware",
                "vrp_platform"), 70.0),
    ("lenovo", ("thinkpad_firmware", "system_update", "ideapad_firmware",
                "xclarity_administrator"), 58.0),
    ("siemens", ("simatic_s7_firmware", "scalance_firmware", "sinumerik_firmware",
                 "ruggedcom_firmware"), 51.0),
    ("axis", ("m3004_firmware", "p1343_firmware", "q1604_firmware", "companion_firmware"), 48.0),
    ("bea_systems", ("weblogic_server", "tuxedo"), 18.5),
    ("avg", ("antivirus",), 8.0),
    ("avast", ("antivirus", "premier"), 9.0),
    ("schneider_electric", ("modicon_m340_firmware", "unity_pro", "ecostruxure"), 25.0),
    ("torproject", ("tor", "tor_browser"), 9.0),
    ("openssl_project", ("openssl",), 30.0),
    ("quick_heal", ("total_security", "antivirus_pro"), 7.0),
    ("nativesolutions", ("tbe_banner_engine",), 2.0),
    ("nginx.inc", ("nginx",), 16.0),
    ("lynx_project", ("lynx",), 3.0),
    ("lan_management_system_project", ("lan_management_system",), 2.5),
    ("provos", ("systrace",), 2.0),
    ("kernel", ("linux_kernel",), 12.0),
    ("samba", ("samba",), 26.0),
    ("vmware", ("esxi", "workstation", "vcenter_server", "fusion"), 55.0),
    ("symantec", ("norton_antivirus", "endpoint_protection", "messaging_gateway"), 60.0),
    ("mcafee", ("virusscan_enterprise", "epolicy_orchestrator"), 34.0),
    ("sap", ("netweaver", "hana", "businessobjects"), 44.0),
    ("netapp", ("ontap", "oncommand_insight"), 30.0),
    ("f5", ("big-ip_ltm", "big-iq"), 28.0),
    ("juniper", ("junos", "screenos"), 40.0),
    ("dlink", ("dir-850l_firmware", "dir-615_firmware", "dcs-930l_firmware"), 24.0),
    ("netgear", ("r7000_firmware", "wnr2000_firmware", "prosafe_firmware"), 23.0),
    ("qualcomm", ("snapdragon_firmware", "msm8996_firmware"), 38.0),
    ("foxitsoftware", ("foxit_reader", "phantompdf"), 22.0),
    ("imagemagick", ("imagemagick",), 21.0),
    ("ffmpeg", ("ffmpeg",), 19.0),
    ("wireshark", ("wireshark",), 25.0),
    ("gnu", ("glibc", "binutils", "bash", "gcc", "coreutils"), 33.0),
    ("python", ("python", "pillow_package"), 14.0),
    ("nodejs", ("node.js",), 12.0),
    ("jenkins", ("jenkins", "pipeline_plugin"), 20.0),
    ("atlassian", ("jira", "confluence", "bitbucket"), 17.0),
    ("drupal", ("drupal",), 27.0),
    ("typo3", ("typo3",), 13.0),
    ("moodle", ("moodle",), 15.0),
    ("phpmyadmin", ("phpmyadmin",), 11.0),
    ("mediawiki", ("mediawiki",), 9.0),
    ("squid-cache", ("squid",), 8.0),
    ("isc", ("bind", "dhcp"), 18.0),
    ("openbsd", ("openbsd", "openssh"), 22.0),
    ("freebsd", ("freebsd",), 16.0),
    ("xen", ("xen_hypervisor",), 19.0),
    ("qemu", ("qemu",), 17.0),
    ("libpng", ("libpng",), 6.0),
    ("libtiff", ("libtiff",), 9.0),
    ("sqlite", ("sqlite",), 7.0),
    ("postgresql", ("postgresql",), 12.0),
    ("mariadb", ("mariadb",), 9.0),
    ("mongodb", ("mongodb",), 7.0),
    ("elastic", ("elasticsearch", "kibana"), 8.0),
    ("docker", ("docker_engine",), 6.0),
    ("kubernetes", ("kubernetes",), 5.0),
    ("gitlab", ("gitlab",), 14.0),
    ("zoho", ("manageengine_servicedesk_plus", "manageengine_opmanager"), 12.0),
    ("trendmicro", ("officescan", "deep_security_manager"), 16.0),
    ("kaspersky", ("internet_security", "endpoint_security"), 10.0),
    ("sophos", ("utm_firmware", "endpoint_protection"), 8.0),
    ("fortinet", ("fortios", "fortimanager"), 21.0),
    ("paloaltonetworks", ("pan-os",), 13.0),
    ("checkpoint", ("security_gateway_firmware",), 7.0),
    ("citrix", ("xenapp", "netscaler_firmware"), 15.0),
    ("realnetworks", ("realplayer",), 9.0),
    ("opera", ("opera_browser",), 13.0),
    ("aol", ("icq", "aim"), 6.0),
]

# Syllable pools for generated long-tail names.
_PREFIXES = (
    "net", "sec", "data", "web", "cyber", "soft", "tech", "info", "micro",
    "open", "digi", "auto", "smart", "cloud", "link", "core", "meta", "sys",
    "alpha", "blue", "red", "green", "fast", "easy", "pro", "multi", "uni",
    "omni", "tele", "inter", "trans", "ultra", "nano", "giga", "hyper",
)
_STEMS = (
    "ware", "works", "logic", "base", "gate", "guard", "shield", "force",
    "flow", "stack", "forge", "mind", "path", "wave", "line", "port", "desk",
    "view", "scope", "track", "vault", "bridge", "node", "grid", "zone",
    "cast", "sync", "scan", "press", "print", "serve", "host", "media",
)
_SUFFIXES = ("", "", "", "_software", "_systems", "_technologies", "_labs",
             "_solutions", "_security", "_networks", "_project", "_team", "_inc")

_PRODUCT_HEADS = (
    "account", "admin", "agent", "archive", "asset", "backup", "banner",
    "billing", "blog", "board", "calendar", "cart", "chat", "cms", "commerce",
    "contact", "content", "control", "dashboard", "directory", "document",
    "download", "event", "file", "forum", "gallery", "guest", "help",
    "image", "inventory", "invoice", "job", "ldap", "library", "mail",
    "media", "member", "message", "monitor", "news", "newsletter", "order",
    "page", "panel", "photo", "poll", "portal", "project", "proxy", "quiz",
    "report", "school", "search", "server", "shop", "site", "store",
    "survey", "task", "ticket", "time", "user", "video", "wiki", "workflow",
)
_PRODUCT_TAILS = (
    "manager", "engine", "suite", "center", "system", "studio", "builder",
    "master", "express", "portal", "server", "client", "gateway", "toolkit",
    "plus", "pro", "lite", "viewer", "editor", "tracker", "creator",
    "assistant", "console", "agent", "hub", "deck", "works", "base",
)


def tokenize_name(name: str) -> tuple[str, ...]:
    """Split a CPE-ish name on separators and drop special characters.

    ``internet-explorer``, ``internet_explorer`` and
    ``internet explorer`` all tokenize to ``("internet", "explorer")``;
    ``avast!`` tokenizes to ``("avast",)``.
    """
    cleaned = []
    current: list[str] = []
    for char in name:
        if char.isalnum() or char == ".":
            current.append(char)
        else:
            if current:
                cleaned.append("".join(current))
            current = []
    if current:
        cleaned.append("".join(current))
    return tuple(cleaned)


def abbreviate(name: str) -> str:
    """First characters of a multi-token name (``internet-explorer`` → ``ie``)."""
    tokens = tokenize_name(name)
    return "".join(token[0] for token in tokens if token)


def _typo(name: str, rng: np.random.Generator) -> str:
    """Drop one interior character (microsoft → microsft)."""
    letters = [i for i, char in enumerate(name) if char.isalnum()]
    if len(letters) < 4:
        return name + "x"
    drop = letters[int(rng.integers(1, len(letters) - 1))]
    return name[:drop] + name[drop + 1 :]


def _char_edit(name: str, rng: np.random.Generator) -> str:
    """Substitute one interior character (the → tbe)."""
    letters = [i for i, char in enumerate(name) if char.isalpha()]
    if not letters:
        return name + "0"
    position = letters[int(rng.integers(0, len(letters)))]
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    current = name[position]
    replacement = alphabet[(alphabet.index(current) + 1) % 26] if current in alphabet else "x"
    return name[: position] + replacement + name[position + 1 :]


def _separator_swap(name: str, rng: np.random.Generator) -> str:
    """Swap underscore/hyphen separators (internet-explorer → internet_explorer)."""
    if "_" in name:
        return name.replace("_", "-")
    if "-" in name:
        return name.replace("-", "_")
    return name + "!"


def _special_chars(name: str, rng: np.random.Generator) -> str:
    """Add or strip a special character (avast → avast!)."""
    for char in "!_-":
        if char in name:
            return name.replace(char, "")
    return name + "!"


def _suffix(name: str, rng: np.random.Generator) -> str:
    """Add or strip a corporate suffix (lynx → lynx_project)."""
    for suffix in ("_project", "_systems", "_inc", "_software", "_team"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    choice = ("_project", "_systems", "_inc", "_software")[int(rng.integers(0, 4))]
    return name + choice


_VARIANT_MAKERS = {
    InconsistencyKind.SPECIAL_CHARS: _special_chars,
    InconsistencyKind.TYPO: _typo,
    InconsistencyKind.CHAR_EDIT: _char_edit,
    InconsistencyKind.SEPARATOR: _separator_swap,
    InconsistencyKind.SUFFIX: _suffix,
}


def make_variant(
    name: str, kind: InconsistencyKind, rng: np.random.Generator
) -> NameVariant:
    """Produce an inconsistent variant of ``name`` of the given kind.

    ``ABBREVIATION`` requires a multi-token name; falls back to SUFFIX
    when the name has a single token.  ``PRODUCT_AS_VENDOR`` is handled
    by the generator itself (it needs the vendor's product list).
    """
    if kind == InconsistencyKind.PRODUCT_AS_VENDOR:
        raise ValueError("product-as-vendor variants are built by the generator")
    if kind == InconsistencyKind.ABBREVIATION:
        tokens = tokenize_name(name)
        if len(tokens) >= 2:
            return NameVariant(name, abbreviate(name), kind)
        kind = InconsistencyKind.SUFFIX
    variant = _VARIANT_MAKERS[kind](name, rng)
    if variant == name:  # ensure the variant actually differs
        variant = name + "!"
        kind = InconsistencyKind.SPECIAL_CHARS
    return NameVariant(name, variant, kind)


def build_universe(
    n_vendors: int, rng: np.random.Generator, max_products_per_vendor: int = 24
) -> list[VendorSpec]:
    """Build a deterministic vendor universe of ``n_vendors`` entries.

    Anchored real vendors come first (carrying the paper's examples);
    the long tail is generated from syllable pools with Zipf-decaying
    weights and one to a handful of products each.
    """
    universe: list[VendorSpec] = [
        VendorSpec(name, products, weight)
        for name, products, weight in _ANCHOR_VENDORS[:n_vendors]
    ]
    anchor_weight = sum(spec.weight for spec in universe)
    seen = {spec.name for spec in universe}
    tail_specs: list[VendorSpec] = []
    rank = 0
    while len(universe) + len(tail_specs) < n_vendors:
        prefix = _PREFIXES[int(rng.integers(0, len(_PREFIXES)))]
        stem = _STEMS[int(rng.integers(0, len(_STEMS)))]
        suffix = _SUFFIXES[int(rng.integers(0, len(_SUFFIXES)))]
        name = f"{prefix}{stem}{suffix}"
        if name in seen:
            name = f"{prefix}{stem}{rank}{suffix}"
        if name in seen:
            rank += 1
            continue
        seen.add(name)
        n_products = 1 + int(rng.integers(0, max_products_per_vendor) ** 2 / max_products_per_vendor)
        products = []
        for _ in range(n_products):
            head = _PRODUCT_HEADS[int(rng.integers(0, len(_PRODUCT_HEADS)))]
            tail = _PRODUCT_TAILS[int(rng.integers(0, len(_PRODUCT_TAILS)))]
            separator = "_" if rng.random() < 0.8 else "-"
            products.append(f"{head}{separator}{tail}")
        # Zipf-shaped placeholder weight; rescaled below.
        weight = 1.0 / (1.0 + len(tail_specs)) ** 0.45
        tail_specs.append(VendorSpec(name, tuple(dict.fromkeys(products)), weight))
        rank += 1
    # Rescale the tail so anchors hold ≈47% of the total CVE mass —
    # that puts the top-10 vendors at ≈36% of CVEs (Table 11) while the
    # long tail absorbs the rest.
    tail_placeholder = sum(spec.weight for spec in tail_specs)
    if tail_specs and tail_placeholder > 0:
        scale = (anchor_weight * 1.13) / tail_placeholder
        tail_specs = [
            VendorSpec(spec.name, spec.products, spec.weight * scale)
            for spec in tail_specs
        ]
    universe.extend(tail_specs)
    return universe
