"""Synthetic NVD snapshot generator.

Produces a deterministic NVD snapshot with the statistical properties
the paper measured on the real 2018-05-21 snapshot (§3, §4), together
with the ground truth needed to score the cleaning pipeline:

- **scale** — CVE volume per year follows the real NVD growth curve
  (107.2K CVEs over 1998-2018 at full scale); vendors/products/CWE
  populations scale proportionally;
- **dates** (§4.1) — every CVE has a true public disclosure date
  (weekday-skewed toward Mon/Tue, with coordinated-disclosure event
  days) and an NVD publication date lagging it (≈38% zero lag, ≈70%
  within 6 days, heavy tail; year-end batch-insertion artifacts such as
  44.8% of 2004's CVEs landing on 12/31/04);
- **names** (§4.2) — ≈10% of vendors carry inconsistent variant names
  of the documented kinds; products likewise; variants always hold
  fewer CVEs than their canonical spelling so the majority rule works;
- **severity** (§4.3) — every CVE has a real CVSS v2 vector; a v3
  vector is derived through a stochastic re-scoring model calibrated to
  Table 4's transition structure, but only CVEs from the v3 era carry
  the v3 label (≈1/3 of the snapshot);
- **types** (§4.4) — ≈31% of CVEs carry only sentinel/missing CWE
  labels; a fraction of those embed the true CWE id in an evaluator
  description, which the regex fix can recover.

An opt-in **adversarial mode** (``GeneratorConfig.adversarial_rate``)
additionally mutates a slice of the snapshot into the hostile shapes
real feeds exhibit — entries with no description at all, a vendor
alias shared by two unrelated canonical vendors, and CVEs stripped of
every CVSS vector — which the cleaning pipeline must survive without
crashing.  :func:`corrupt_feed` complements it at the serialisation
layer by garbling CVSS ``vectorString`` payloads in a feed document.
"""

from __future__ import annotations

import dataclasses
import datetime
import json

import numpy as np

from repro.cpe import CpeName
from repro.cvss import CvssV2Metrics, CvssV3Metrics, severity_v2
from repro.cvss.v2 import score_v2
from repro.cwe import SENTINEL_NOINFO, SENTINEL_OTHER, all_ids
from repro.nvd import CveEntry, NvdSnapshot, Reference
from repro.synth.descriptions import describe, evaluator_comment
from repro.synth.names import (
    InconsistencyKind,
    NameVariant,
    VendorSpec,
    build_universe,
    make_variant,
)
from repro.synth.webcorpus import SyntheticWeb
from repro.web.domains import TOP_DOMAINS

__all__ = [
    "GeneratorConfig",
    "GroundTruth",
    "SyntheticNvd",
    "corrupt_feed",
    "generate",
]

# ---------------------------------------------------------------------------
# Configuration.
# ---------------------------------------------------------------------------

#: Fraction of all CVEs published per year (normalized at use).  The
#: curve follows the real NVD volume trajectory through May 2018.
_YEAR_WEIGHTS: dict[int, float] = {
    1998: 0.004, 1999: 0.014, 2000: 0.011, 2001: 0.015, 2002: 0.021,
    2003: 0.014, 2004: 0.024, 2005: 0.046, 2006: 0.062, 2007: 0.059,
    2008: 0.052, 2009: 0.052, 2010: 0.042, 2011: 0.038, 2012: 0.048,
    2013: 0.048, 2014: 0.072, 2015: 0.060, 2016: 0.068, 2017: 0.145,
    2018: 0.065,
}

#: NVD publication batch days: year → [(month, day, fraction of the
#: year's CVEs snapped to that date)].  Reproduces Table 8's CVE-date
#: column (New Year's Eve backdating and bulk-insertion days).
_PUBLICATION_BATCHES: dict[int, list[tuple[int, int, float]]] = {
    2002: [(12, 31, 0.205)],
    2003: [(12, 31, 0.267)],
    2004: [(12, 31, 0.448)],
    2005: [(5, 2, 0.166), (12, 31, 0.078)],
    2014: [(9, 9, 0.041)],
    2017: [(8, 8, 0.022)],
    2018: [(2, 15, 0.023), (4, 18, 0.019)],
}

#: Disclosure event days (coordinated patch-day releases): Table 8's
#: estimated-disclosure-date column.  2018 dates are kept within the
#: snapshot window (Jan-May).
_DISCLOSURE_BATCHES: dict[int, list[tuple[int, int, float]]] = {
    2005: [(5, 2, 0.054)],
    2014: [(9, 9, 0.051)],
    2015: [(7, 14, 0.037)],
    2016: [(1, 19, 0.046)],
    2017: [(7, 5, 0.024), (7, 18, 0.022), (1, 17, 0.020)],
    2018: [(4, 2, 0.023), (2, 15, 0.017), (4, 18, 0.015)],
}

#: Disclosure weekday weights Mon..Sun (Figure 2: first half of the
#: week dominates; weekends are quiet).
_WEEKDAY_WEIGHTS = np.array([0.21, 0.23, 0.19, 0.15, 0.10, 0.06, 0.06])

#: CWE prevalence (top of the real NVD distribution).  The rest of the
#: catalog shares the remaining mass so the description classifier sees
#: ~150 classes.
_CWE_WEIGHTS: dict[str, float] = {
    "CWE-119": 0.130, "CWE-79": 0.120, "CWE-89": 0.085, "CWE-264": 0.065,
    "CWE-20": 0.060, "CWE-200": 0.050, "CWE-399": 0.040, "CWE-22": 0.035,
    "CWE-94": 0.030, "CWE-352": 0.025, "CWE-189": 0.020, "CWE-190": 0.020,
    "CWE-287": 0.015, "CWE-416": 0.015, "CWE-310": 0.015, "CWE-255": 0.012,
    "CWE-284": 0.012, "CWE-285": 0.010, "CWE-78": 0.010, "CWE-400": 0.010,
    "CWE-125": 0.010, "CWE-787": 0.008, "CWE-476": 0.008, "CWE-434": 0.007,
    "CWE-362": 0.006, "CWE-59": 0.005, "CWE-601": 0.005, "CWE-77": 0.004,
    "CWE-798": 0.004, "CWE-611": 0.004, "CWE-502": 0.004, "CWE-134": 0.004,
    "CWE-327": 0.004, "CWE-415": 0.003, "CWE-369": 0.003, "CWE-306": 0.003,
    "CWE-918": 0.002, "CWE-835": 0.002,
}

#: CWE families whose exploitation typically needs user interaction.
_UI_CWES = frozenset({"CWE-79", "CWE-352", "CWE-601", "CWE-416", "CWE-119",
                      "CWE-120", "CWE-125", "CWE-787", "CWE-190", "CWE-415"})

#: CWE families that frequently cross a privilege/scope boundary in v3.
_SCOPE_CHANGE_PROB: dict[str, float] = {
    "CWE-79": 0.95, "CWE-352": 0.85, "CWE-601": 0.90,
    "CWE-94": 0.30, "CWE-22": 0.25, "CWE-264": 0.35, "CWE-269": 0.35,
    "CWE-918": 0.80,
}

#: Hardware-ish vendors that mint per-model firmware product names,
#: driving Table 11's products-per-vendor ranking.
_PRODUCT_MINTING: dict[str, float] = {
    "hp": 0.92, "cisco": 0.72, "axis": 0.95, "intel": 0.72, "huawei": 0.78,
    "lenovo": 0.85, "siemens": 0.85, "ibm": 0.35, "oracle": 0.18,
    "microsoft": 0.12, "dlink": 0.85, "netgear": 0.85, "qualcomm": 0.80,
}


@dataclasses.dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs for the synthetic snapshot.

    ``n_cves`` scales the whole universe; the paper's snapshot is
    107,200 CVEs (use ``n_cves=107_200`` for full scale).  All other
    rates default to the paper's measured values.
    """

    n_cves: int = 13_400
    seed: int = 2018
    start_year: int = 1998
    end_year: int = 2018
    snapshot_date: datetime.date = datetime.date(2018, 5, 21)
    #: vendors per CVE in the real snapshot: 18,991 / 107,200.
    vendor_ratio: float = 0.177
    #: fraction of canonical vendors that grow inconsistent variants
    #: (≈871 groups / 18,991 vendors).
    vendor_group_fraction: float = 0.046
    #: fraction of a variant vendor's CVEs that use the variant name.
    variant_use_probability: float = 0.28
    #: fraction of vendors whose products grow variants (700 / 18,991).
    product_group_fraction: float = 0.037
    #: CWE sentinel rates (26,312 / 7,566 / 1,293 over 107.2K).
    cwe_other_rate: float = 0.245
    cwe_noinfo_rate: float = 0.071
    cwe_missing_rate: float = 0.012
    #: P(evaluator comment embeds the CWE id | sentinel label).
    cwe_in_description_given_other: float = 0.066
    cwe_in_description_given_noinfo: float = 0.0016
    #: P(description embeds the id | concrete label already assigned).
    cwe_in_description_given_labeled: float = 0.010
    #: references per CVE (paper: 591.4K URLs / 107.2K CVEs ≈ 5.5).
    mean_references: float = 5.5
    #: fraction of reference URLs on top-50 domains (>85%).
    top_domain_coverage: float = 0.86
    #: zero-lag probability by v2 severity (LOW/MEDIUM/HIGH); the §4.1
    #: improvement skews toward high-severity CVEs.
    zero_lag_by_severity: tuple[float, float, float] = (0.55, 0.42, 0.28)
    #: fraction of entries mutated into adversarial records (empty
    #: descriptions, colliding vendor aliases, CVSS-less CVEs).  0
    #: disables the pass entirely, keeping default bundles bit-identical
    #: to pre-adversarial builds.
    adversarial_rate: float = 0.0
    #: per-year severity drift in [-1, 1]: positive values skew the
    #: sampled v2 impact triples toward more severe outcomes in late
    #: years (and milder in early years).  0.0 keeps sampling
    #: stationary and bit-identical to pre-drift builds.
    severity_drift: float = 0.0
    #: multiplier on batch/event-day fractions (Table 8's backdating
    #: and coordinated-disclosure concentrations) and on the weekday
    #: skew sharpness.  1.0 reproduces the paper's measured values
    #: bit-identically; 0.0 spreads disclosures uniformly.
    burstiness: float = 1.0


# ---------------------------------------------------------------------------
# Ground truth.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class GroundTruth:
    """Everything the generator knows that the cleaner must recover."""

    #: CVE id → true public disclosure date.
    disclosure: dict[str, datetime.date]
    #: inconsistent vendor name → canonical vendor name.
    vendor_map: dict[str, str]
    #: (canonical vendor, inconsistent product) → canonical product.
    product_map: dict[tuple[str, str], str]
    #: CVE id → true CWE id.
    true_cwe: dict[str, str]
    #: CVE ids whose CPE uses a variant vendor name.
    mislabeled_vendor_cves: set[str]
    #: CVE ids whose CPE uses a variant product name.
    mislabeled_product_cves: set[str]
    #: CVE id → true (latent) CVSS v3 metrics, including v2-only CVEs.
    true_v3: dict[str, CvssV3Metrics]
    #: the vendor universe the names were drawn from.
    universe: list[VendorSpec]
    #: variant records, for pattern analyses (Table 2).
    vendor_variants: list[NameVariant]
    product_variants: list[NameVariant]
    #: adversarial scenario name → CVE ids mutated by that scenario
    #: (empty unless ``GeneratorConfig.adversarial_rate`` > 0).
    adversarial_cves: dict[str, set[str]] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class SyntheticNvd:
    """The generator's output bundle."""

    snapshot: NvdSnapshot
    web: SyntheticWeb
    truth: GroundTruth
    config: GeneratorConfig


# ---------------------------------------------------------------------------
# CVSS sampling.
# ---------------------------------------------------------------------------

#: Impact-triple profiles per CWE family: (C, I, A) → weight.
_IMPACT_PROFILES: dict[str, list[tuple[tuple[str, str, str], float]]] = {
    "memory": [(("P", "P", "P"), 0.55), (("C", "C", "C"), 0.35), (("N", "N", "P"), 0.10)],
    "xss": [(("N", "P", "N"), 0.9), (("P", "P", "N"), 0.1)],
    "sqli": [(("P", "P", "P"), 0.85), (("C", "C", "C"), 0.1), (("P", "N", "N"), 0.05)],
    "dos": [(("N", "N", "P"), 0.6), (("N", "N", "C"), 0.4)],
    "info": [(("P", "N", "N"), 0.75), (("C", "N", "N"), 0.25)],
    "priv": [(("C", "C", "C"), 0.5), (("P", "P", "P"), 0.5)],
    "auth": [(("P", "P", "P"), 0.6), (("C", "C", "C"), 0.25), (("P", "P", "N"), 0.15)],
    "generic": [(("P", "P", "P"), 0.45), (("N", "N", "P"), 0.2),
                (("P", "N", "N"), 0.15), (("C", "C", "C"), 0.2)],
}

_CWE_TO_PROFILE: dict[str, str] = {
    "CWE-119": "memory", "CWE-120": "memory", "CWE-125": "info",
    "CWE-787": "memory", "CWE-416": "memory", "CWE-415": "memory",
    "CWE-190": "memory", "CWE-189": "dos", "CWE-476": "dos",
    "CWE-369": "dos", "CWE-400": "dos", "CWE-399": "dos", "CWE-835": "dos",
    "CWE-79": "xss", "CWE-352": "xss", "CWE-601": "xss",
    "CWE-89": "sqli", "CWE-94": "sqli", "CWE-78": "priv", "CWE-77": "priv",
    "CWE-22": "info", "CWE-200": "info", "CWE-255": "info", "CWE-310": "info",
    "CWE-611": "info", "CWE-918": "info",
    "CWE-264": "priv", "CWE-284": "priv", "CWE-285": "priv", "CWE-269": "priv",
    "CWE-798": "auth", "CWE-287": "auth", "CWE-306": "auth",
    "CWE-502": "memory", "CWE-434": "priv", "CWE-362": "priv",
    "CWE-59": "priv", "CWE-134": "memory", "CWE-327": "info",
}


def _choose(options: list, weights: list[float], rng: np.random.Generator):
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    return options[int(rng.choice(len(options), p=probabilities))]


#: Impact-letter severity ranks for the drift reweighting.
_IMPACT_RANK = {"N": 0, "P": 1, "C": 2}


def _sample_v2(
    cwe_id: str, rng: np.random.Generator, drift: float = 0.0
) -> CvssV2Metrics:
    """Sample a realistic CVSS v2 vector conditioned on the CWE family.

    ``drift`` (the scenario engine's per-year severity drift, already
    mapped to this CVE's year) exponentially reweights the impact
    triples by their severity rank; 0.0 leaves the profile untouched
    and the RNG stream bit-identical.
    """
    profile_key = _CWE_TO_PROFILE.get(cwe_id, "generic")
    profile = _IMPACT_PROFILES[profile_key]
    weights = [p[1] for p in profile]
    if drift:
        weights = [
            weight * np.exp(drift * sum(_IMPACT_RANK[i] for i in triple))
            for (triple, _), weight in zip(profile, weights)
        ]
    impacts = _choose([p[0] for p in profile], weights, rng)
    access_vector = _choose(["N", "A", "L"], [0.82, 0.03, 0.15], rng)
    if profile_key == "xss":
        # XSS needs victim interaction, which v2 encoded as Medium
        # access complexity.
        access_complexity = _choose(["M", "L", "H"], [0.8, 0.15, 0.05], rng)
    elif profile_key == "sqli":
        # Injection is trivially scriptable: almost always Low.
        access_complexity = _choose(["L", "M", "H"], [0.85, 0.12, 0.03], rng)
    else:
        access_complexity = _choose(["L", "M", "H"], [0.55, 0.38, 0.07], rng)
    authentication = _choose(["N", "S", "M"], [0.92, 0.075, 0.005], rng)
    return CvssV2Metrics(
        access_vector=access_vector,
        access_complexity=access_complexity,
        authentication=authentication,
        confidentiality=impacts[0],
        integrity=impacts[1],
        availability=impacts[2],
    )


def _derive_v3(
    v2: CvssV2Metrics, cwe_id: str, rng: np.random.Generator
) -> CvssV3Metrics:
    """Re-score a v2 vector under the v3 model (the ground-truth link).

    Encodes how human analysts re-scored CVEs when v3 arrived: v2's
    Partial impacts frequently became High (v3's scope/impact redesign,
    the source of Table 6's upward skew), medium access complexity
    usually unpacked into low complexity plus required user
    interaction, and web-boundary weaknesses gained changed scope.
    """
    attack_vector = v2.access_vector
    needs_ui = cwe_id in _UI_CWES
    complete_compromise = (
        v2.confidentiality == "C" and v2.integrity == "C" and v2.availability == "C"
    )
    # User interaction in v3 is essentially family-determined: crafted-
    # file / web-script weaknesses need a victim action, while complete-
    # compromise bugs in those families skew server-side.  v2's Medium
    # access complexity usually encoded a victim action too, which v3
    # moved into the user-interaction metric while the complexity
    # itself relaxed to Low.
    if needs_ui:
        user_interaction = "N" if complete_compromise else "R"
    elif v2.access_complexity == "M":
        user_interaction = "R" if rng.random() < 0.85 else "N"
    else:
        user_interaction = "N"
    attack_complexity = "H" if v2.access_complexity == "H" else "L"
    privileges_required = {"N": "N", "S": "L", "M": "H"}[v2.authentication]
    scope_probability = _SCOPE_CHANGE_PROB.get(cwe_id, 0.0)
    scope = "C" if (scope_probability >= 0.5 or rng.random() < scope_probability) else "U"

    # How v2 "Partial" re-rates under v3 is mostly determined by the
    # weakness family: memory corruption / injection / privilege bugs
    # were systematically upgraded to High, web-script impacts stayed
    # Low.  A small noise floor keeps the mapping from being exactly
    # deterministic, matching the paper's ≈86% ceiling.
    profile = _CWE_TO_PROFILE.get(cwe_id, "generic")
    partial_to_high = {
        "memory": 0.92, "sqli": 0.92, "priv": 0.88, "auth": 0.88,
        "dos": 0.82, "info": 0.78, "xss": 0.10, "generic": 0.82,
    }[profile]
    # One coin per CVE, not per dimension: re-raters upgraded the
    # impact triple as a whole, which keeps the mapping learnable.
    upgrade_partials = rng.random() < partial_to_high

    def impact_3(v2_impact: str) -> str:
        if v2_impact == "N":
            return "N"
        if v2_impact == "P":
            return "H" if upgrade_partials else "L"
        return "H"

    return CvssV3Metrics(
        attack_vector=attack_vector,
        attack_complexity=attack_complexity,
        privileges_required=privileges_required,
        user_interaction=user_interaction,
        scope=scope,
        confidentiality=impact_3(v2.confidentiality),
        integrity=impact_3(v2.integrity),
        availability=impact_3(v2.availability),
    )


# ---------------------------------------------------------------------------
# Dates.
# ---------------------------------------------------------------------------


def _year_bounds(year: int, config: GeneratorConfig) -> tuple[datetime.date, datetime.date]:
    start = datetime.date(year, 1, 1)
    if year == config.snapshot_date.year:
        # Leave room for publication lag inside the snapshot window.
        end = config.snapshot_date - datetime.timedelta(days=21)
    else:
        end = datetime.date(year, 12, 31)
    return start, end


def _burst(fraction: float, config: GeneratorConfig) -> float:
    """A batch-day fraction under the scenario burstiness multiplier.

    1.0 returns ``fraction`` untouched (bit-identical baseline); other
    values scale the concentration, capped below certainty so the
    rejection machinery above it stays live.
    """
    if config.burstiness == 1.0:
        return fraction
    return min(0.97, fraction * config.burstiness)


def _weekday_profile(config: GeneratorConfig) -> tuple[np.ndarray, float]:
    """(weights, max weight) of the disclosure weekday skew.

    Burstiness sharpens (>1) or flattens (<1, uniform at 0) the
    Figure 2 profile; 1.0 returns the measured array itself so the
    accept/reject draws stay bit-identical.
    """
    if config.burstiness == 1.0:
        return _WEEKDAY_WEIGHTS, float(_WEEKDAY_WEIGHTS.max())
    weights = _WEEKDAY_WEIGHTS ** config.burstiness
    return weights, float(weights.max())


def _sample_disclosure(
    year: int,
    config: GeneratorConfig,
    rng: np.random.Generator,
    weekday_profile: tuple[np.ndarray, float] | None = None,
) -> tuple[datetime.date, bool]:
    """A disclosure date in ``year``; True when it hit an event day."""
    weekday_weights, weekday_max = weekday_profile or _weekday_profile(config)
    for month, day, fraction in _DISCLOSURE_BATCHES.get(year, ()):
        if rng.random() < _burst(fraction, config):
            return datetime.date(year, month, day), True
    start, end = _year_bounds(year, config)
    span = (end - start).days
    while True:
        offset = int(rng.integers(0, span + 1))
        candidate = start + datetime.timedelta(days=offset)
        # Accept/reject on the weekday profile (baseline max 0.23).
        if rng.random() < weekday_weights[candidate.weekday()] / weekday_max:
            return candidate, False


def _sample_lag(
    severity_index: int,
    batch_disclosed: bool,
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> int:
    """Days between disclosure and NVD publication (Figure 1's CDF)."""
    zero_probability = config.zero_lag_by_severity[severity_index]
    if batch_disclosed:
        zero_probability = max(zero_probability, 0.7)
    if rng.random() < zero_probability:
        return 0
    if rng.random() < 0.52:
        return int(rng.integers(1, 7))
    tail = 7 + int(rng.lognormal(mean=3.4, sigma=1.3))
    return min(tail, 2372)


def _apply_publication_batches(
    disclosure: datetime.date,
    published: datetime.date,
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> datetime.date:
    """Snap publication to a batch-insertion day (Table 8's artifact)."""
    for month, day, fraction in _PUBLICATION_BATCHES.get(disclosure.year, ()):
        batch_day = datetime.date(disclosure.year, month, day)
        if batch_day >= disclosure and rng.random() < _burst(fraction, config):
            return batch_day
    return published


# ---------------------------------------------------------------------------
# Main generation.
# ---------------------------------------------------------------------------


def _cwe_distribution() -> tuple[list[str], np.ndarray]:
    ids = all_ids()
    weights = np.array(
        [_CWE_WEIGHTS.get(cwe_id, 0.0) for cwe_id in ids], dtype=float
    )
    remaining = max(1.0 - weights.sum(), 0.05)
    unlisted = weights == 0.0
    weights[unlisted] = remaining / unlisted.sum()
    return ids, weights / weights.sum()


def _build_vendor_variants(
    universe: list[VendorSpec],
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> tuple[dict[str, str], list[NameVariant]]:
    """Pick impacted vendors and mint their inconsistent variants."""
    # Clamp so choice(replace=False) stays feasible at chaos-dialed
    # group fractions (the scenario engine can push them toward 1).
    n_groups = min(
        len(universe), max(1, int(len(universe) * config.vendor_group_fraction))
    )
    # Skew selection toward heavier vendors a little: real
    # inconsistencies hit well-known vendors too (Table 16).
    weights = np.array([spec.weight**0.3 for spec in universe])
    weights /= weights.sum()
    chosen = rng.choice(len(universe), size=n_groups, replace=False, p=weights)
    kinds = [
        InconsistencyKind.SPECIAL_CHARS,
        InconsistencyKind.TYPO,
        InconsistencyKind.ABBREVIATION,
        InconsistencyKind.SUFFIX,
        InconsistencyKind.PRODUCT_AS_VENDOR,
    ]
    kind_weights = [0.28, 0.22, 0.12, 0.28, 0.10]
    mapping: dict[str, str] = {}
    variants: list[NameVariant] = []
    taken = {spec.name for spec in universe}
    for index in chosen:
        spec = universe[int(index)]
        n_variants = 1 if rng.random() < 0.9 else 2
        for _ in range(n_variants):
            kind = _choose(kinds, kind_weights, rng)
            if kind == InconsistencyKind.PRODUCT_AS_VENDOR:
                candidates = [p for p in spec.products if p not in taken]
                if not candidates:
                    kind = InconsistencyKind.SUFFIX
                    variant = make_variant(spec.name, kind, rng)
                else:
                    product = candidates[int(rng.integers(0, len(candidates)))]
                    variant = NameVariant(spec.name, product, kind)
            else:
                variant = make_variant(spec.name, kind, rng)
            if variant.variant in taken or variant.variant == spec.name:
                continue
            taken.add(variant.variant)
            mapping[variant.variant] = spec.name
            variants.append(variant)
    return mapping, variants


def _build_product_variants(
    universe: list[VendorSpec],
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> tuple[dict[tuple[str, str], str], list[NameVariant]]:
    """Mint inconsistent product-name variants under chosen vendors."""
    multi_token = [
        (spec.name, product)
        for spec in universe
        for product in spec.products
    ]
    n_groups = max(1, int(len(universe) * config.product_group_fraction * 2.4))
    chosen = rng.choice(len(multi_token), size=min(n_groups, len(multi_token)), replace=False)
    kinds = [
        InconsistencyKind.SEPARATOR,
        InconsistencyKind.ABBREVIATION,
        InconsistencyKind.CHAR_EDIT,
        InconsistencyKind.SPECIAL_CHARS,
    ]
    kind_weights = [0.45, 0.2, 0.15, 0.2]
    mapping: dict[tuple[str, str], str] = {}
    variants: list[NameVariant] = []
    for index in chosen:
        vendor, product = multi_token[int(index)]
        kind = _choose(kinds, kind_weights, rng)
        variant = make_variant(product, kind, rng)
        if variant.variant == product:
            continue
        mapping[(vendor, variant.variant)] = product
        variants.append(variant)
    return mapping, variants


#: Adversarial scenarios, cycled over the mutated entries in order.
_ADVERSARIAL_KINDS = ("empty_description", "colliding_alias", "missing_cvss")


def _adversarialize(
    entries: list[CveEntry],
    universe: list[VendorSpec],
    truth: GroundTruth,
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> None:
    """Mutate ``adversarial_rate`` of the entries into hostile shapes.

    Three scenarios, cycled deterministically over the chosen entries:

    - ``empty_description`` — the description list is emptied; the CWE
      regex and description classifier must treat the entry as
      information-free, not crash on it;
    - ``colliding_alias`` — the CPE vendor is rewritten to one alias
      shared across entries whose canonical vendors differ, so the
      name-consolidation majority rule faces a genuinely ambiguous
      mapping (the generator's normal variant machinery guarantees
      collision-freedom; this deliberately breaks that guarantee);
    - ``missing_cvss`` — every CVSS vector is stripped, the entry-level
      analogue of a feed item whose ``vectorString`` failed to parse.

    Mutated ids are recorded per scenario in ``truth.adversarial_cves``
    so tests can assert the pipeline survived *those* entries.
    """
    n_target = min(len(entries), max(3, int(len(entries) * config.adversarial_rate)))
    chosen = sorted(
        int(index)
        for index in rng.choice(len(entries), size=n_target, replace=False)
    )
    heavy = sorted(universe, key=lambda spec: (-spec.weight, spec.name))[:2]
    collider = f"{heavy[0].name}-{heavy[1].name}-oem"
    for slot, index in enumerate(chosen):
        entry = entries[index]
        kind = _ADVERSARIAL_KINDS[slot % len(_ADVERSARIAL_KINDS)]
        if kind == "empty_description":
            entries[index] = entry.replace(descriptions=())
        elif kind == "colliding_alias":
            product = (
                entry.cpes[0].product if entry.cpes else heavy[0].products[0]
            )
            version = entry.cpes[0].version if entry.cpes else "1.0"
            entries[index] = entry.replace(
                cpes=(CpeName("a", collider, product, version=version),)
            )
        else:
            entries[index] = entry.replace(cvss_v2=None, cvss_v3=None)
        truth.adversarial_cves.setdefault(kind, set()).add(entry.cve_id)


def corrupt_feed(feed: dict, *, rate: float = 0.05, seed: int = 0) -> dict:
    """Return a deep copy of ``feed`` with malformed CVSS vectors.

    Deterministically garbles the ``vectorString`` of ≈``rate`` of the
    CVSS metric blocks — truncated vectors, unknown metric keys, empty
    strings, and non-string payloads, the shapes observed in real NVD
    exports.  ``repro.nvd.entries_from_feed`` must degrade each one to
    "no CVSS" instead of aborting the snapshot parse.
    """
    corrupted = json.loads(json.dumps(feed))
    rng = np.random.default_rng(seed)
    garbles: tuple[object, ...] = ("AV:N/AC:L", "AV:X/QQ:9/??", "", None)
    count = 0
    for item in corrupted.get("CVE_Items", ()):
        impact = item.get("impact", {})
        for block, metric in (("baseMetricV2", "cvssV2"), ("baseMetricV3", "cvssV3")):
            if block in impact and rng.random() < rate:
                impact[block][metric]["vectorString"] = garbles[count % len(garbles)]
                count += 1
    return corrupted


def _version_string(rng: np.random.Generator) -> str:
    major = int(rng.integers(0, 12))
    minor = int(rng.integers(0, 10))
    if rng.random() < 0.4:
        return f"{major}.{minor}"
    patch = int(rng.integers(0, 20))
    return f"{major}.{minor}.{patch}"


def generate(config: GeneratorConfig | None = None) -> SyntheticNvd:
    """Generate the full synthetic bundle (snapshot + web + truth)."""
    config = config or GeneratorConfig()
    rng = np.random.default_rng(config.seed)

    # -- universes ---------------------------------------------------------
    n_vendors = max(40, int(config.n_cves * config.vendor_ratio))
    universe = build_universe(n_vendors, rng)
    vendor_map, vendor_variants = _build_vendor_variants(universe, config, rng)
    product_map, product_variants = _build_product_variants(universe, config, rng)
    variants_by_vendor: dict[str, list[str]] = {}
    for variant, canonical in vendor_map.items():
        variants_by_vendor.setdefault(canonical, []).append(variant)
    product_variants_by_key: dict[tuple[str, str], list[str]] = {}
    for (vendor, variant), canonical in product_map.items():
        product_variants_by_key.setdefault((vendor, canonical), []).append(variant)

    vendor_weights = np.array([spec.weight for spec in universe])
    vendor_weights /= vendor_weights.sum()
    cwe_ids, cwe_weights = _cwe_distribution()

    # -- year allocation -----------------------------------------------------
    years = [
        year
        for year in range(config.start_year, config.end_year + 1)
        if year in _YEAR_WEIGHTS
    ]
    year_probabilities = np.array([_YEAR_WEIGHTS[year] for year in years])
    year_probabilities /= year_probabilities.sum()
    year_counts = rng.multinomial(config.n_cves, year_probabilities)

    web = SyntheticWeb(seed=config.seed + 1)
    long_tail_domains = [
        f"www.advisory-{index:04d}.example.org" for index in range(400)
    ]
    alive_top = [d for d, info in TOP_DOMAINS.items() if info.alive]
    all_top = list(TOP_DOMAINS)
    top_weights = np.array([1.0 / (rank + 3.0) for rank in range(len(all_top))])
    top_weights /= top_weights.sum()
    # Disclosure evidence concentrates on the popular advisory sites,
    # mirroring the Zipf head of the overall URL distribution (§4.1's
    # "diminishing returns" beyond the top domains).
    alive_weights = np.array(
        [1.0 / (all_top.index(domain) + 3.0) for domain in alive_top]
    )
    alive_weights /= alive_weights.sum()

    entries: list[CveEntry] = []
    truth = GroundTruth(
        disclosure={},
        vendor_map=vendor_map,
        product_map=product_map,
        true_cwe={},
        mislabeled_vendor_cves=set(),
        mislabeled_product_cves=set(),
        true_v3={},
        universe=universe,
        vendor_variants=vendor_variants,
        product_variants=product_variants,
    )
    minted_counters: dict[str, int] = {}

    weekday_profile = _weekday_profile(config)
    year_span = max(1, config.end_year - config.start_year)

    for year, count in zip(years, year_counts):
        # The scenario drift maps the year linearly onto
        # [-severity_drift, +severity_drift]: early years sample milder
        # triples, late years more severe ones.  0.0 disables the
        # reweighting entirely (bit-identical baseline).
        if config.severity_drift:
            drift = config.severity_drift * (
                2.0 * (year - config.start_year) / year_span - 1.0
            )
        else:
            drift = 0.0
        for sequence in range(int(count)):
            cve_id = f"CVE-{year}-{1000 + sequence:04d}"

            # ---- type and severity ----------------------------------------
            true_cwe = cwe_ids[int(rng.choice(len(cwe_ids), p=cwe_weights))]
            v2 = _sample_v2(true_cwe, rng, drift)
            v3 = _derive_v3(v2, true_cwe, rng)
            v2_severity = severity_v2(score_v2(v2).base)
            severity_index = {"LOW": 0, "MEDIUM": 1, "HIGH": 2}[v2_severity.value]

            # ---- dates -------------------------------------------------------
            disclosure, batch_disclosed = _sample_disclosure(
                year, config, rng, weekday_profile
            )
            lag = _sample_lag(severity_index, batch_disclosed, config, rng)
            published = disclosure + datetime.timedelta(days=lag)
            published = _apply_publication_batches(disclosure, published, config, rng)
            if published > config.snapshot_date:
                published = config.snapshot_date
            if published < disclosure:
                published = disclosure
            # Batch snapping and snapshot clipping change the effective
            # lag; the reference corpus below must see the final value.
            lag = (published - disclosure).days

            # ---- v3 label presence ----------------------------------------
            publication_year = published.year
            if publication_year >= 2016:
                has_v3 = True
            elif publication_year == 2015:
                has_v3 = rng.random() < 0.6
            elif publication_year == 2014:
                has_v3 = rng.random() < 0.15
            else:
                has_v3 = rng.random() < 0.004

            # ---- vendor / product ------------------------------------------
            spec: VendorSpec = universe[
                int(rng.choice(len(universe), p=vendor_weights))
            ]
            canonical_vendor = spec.name
            minting = _PRODUCT_MINTING.get(canonical_vendor, 0.0)
            if minting and rng.random() < minting:
                minted_counters[canonical_vendor] = (
                    minted_counters.get(canonical_vendor, 0) + 1
                )
                model = minted_counters[canonical_vendor]
                canonical_product = f"model-{model:04d}_firmware"
            else:
                canonical_product = spec.products[
                    int(rng.integers(0, len(spec.products)))
                ]

            vendor_name = canonical_vendor
            if canonical_vendor in variants_by_vendor:
                options = variants_by_vendor[canonical_vendor]
                if rng.random() < config.variant_use_probability:
                    vendor_name = options[int(rng.integers(0, len(options)))]
                    truth.mislabeled_vendor_cves.add(cve_id)
            product_name = canonical_product
            key = (canonical_vendor, canonical_product)
            if key in product_variants_by_key and rng.random() < 0.35:
                options = product_variants_by_key[key]
                product_name = options[int(rng.integers(0, len(options)))]
                truth.mislabeled_product_cves.add(cve_id)

            version = _version_string(rng)
            cpes = [
                CpeName("a", vendor_name, product_name, version=version),
            ]
            if rng.random() < 0.25:
                cpes.append(
                    CpeName(
                        "a", vendor_name, product_name,
                        version=_version_string(rng),
                    )
                )

            # ---- CWE labelling gaps -----------------------------------------
            roll = rng.random()
            descriptions = [
                describe(
                    true_cwe,
                    canonical_vendor,
                    canonical_product,
                    version,
                    rng,
                )
            ]
            if roll < config.cwe_other_rate:
                observed_cwe: tuple[str, ...] = (SENTINEL_OTHER,)
                if rng.random() < config.cwe_in_description_given_other:
                    descriptions.append(evaluator_comment(true_cwe))
            elif roll < config.cwe_other_rate + config.cwe_noinfo_rate:
                observed_cwe = (SENTINEL_NOINFO,)
                if rng.random() < config.cwe_in_description_given_noinfo:
                    descriptions.append(evaluator_comment(true_cwe))
            elif roll < (
                config.cwe_other_rate
                + config.cwe_noinfo_rate
                + config.cwe_missing_rate
            ):
                observed_cwe = ()
                if rng.random() < config.cwe_in_description_given_noinfo:
                    descriptions.append(evaluator_comment(true_cwe))
            else:
                observed_cwe = (true_cwe,)
                if rng.random() < config.cwe_in_description_given_labeled:
                    # §4.4: "CVEs that list additionally relevant
                    # CWE-IDs in the description beyond those listed in
                    # the CWE field" — mention a second, related type.
                    extra = cwe_ids[int(rng.choice(len(cwe_ids), p=cwe_weights))]
                    if extra != true_cwe:
                        descriptions.append(evaluator_comment(extra))

            # ---- references and web pages -----------------------------------
            n_references = max(1, int(rng.poisson(config.mean_references)))
            reference_urls: list[str] = []
            # When the lag is positive the disclosure evidence must be
            # reachable: force the first reference onto a live top
            # domain and give its page the true disclosure date.
            if lag > 0:
                domain = alive_top[int(rng.choice(len(alive_top), p=alive_weights))]
                url = f"https://{domain}/advisories/{cve_id.lower()}"
                web.add_page(url, disclosure)
                reference_urls.append(url)
                n_references -= 1
            for reference_index in range(n_references):
                if rng.random() < config.top_domain_coverage:
                    domain = all_top[int(rng.choice(len(all_top), p=top_weights))]
                else:
                    domain = long_tail_domains[
                        int(rng.integers(0, len(long_tail_domains)))
                    ]
                url = f"https://{domain}/ref/{cve_id.lower()}-{reference_index}"
                # Secondary pages carry dates at or after disclosure.
                extra = int(rng.integers(0, max(lag, 0) + 30))
                web.add_page(url, disclosure + datetime.timedelta(days=extra))
                reference_urls.append(url)
            references = tuple(Reference(url) for url in reference_urls)

            entries.append(
                CveEntry(
                    cve_id=cve_id,
                    published=published,
                    descriptions=tuple(descriptions),
                    references=references,
                    cwe_ids=observed_cwe,
                    cvss_v2=v2,
                    cvss_v3=v3 if has_v3 else None,
                    cpes=tuple(cpes),
                    modified=published,
                )
            )
            truth.disclosure[cve_id] = disclosure
            truth.true_cwe[cve_id] = true_cwe
            truth.true_v3[cve_id] = v3

    if config.adversarial_rate > 0 and entries:
        _adversarialize(entries, universe, truth, config, rng)

    return SyntheticNvd(
        snapshot=NvdSnapshot(entries),
        web=web,
        truth=truth,
        config=config,
    )
