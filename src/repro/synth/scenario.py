"""Parametric scenario engine over the synthetic-NVD generator.

A :class:`Scenario` is a *named point in a declared parameter space*:
datasets are functions of parameters, not files (the CORTEX
generator-datasets model).  Every perf number, robustness claim, and
test in this repository is made against a scenario — by default the
``baseline`` one, which maps onto :class:`~repro.synth.GeneratorConfig`
with all defaults and is therefore bit-identical to the pre-engine
generation path.

The parameter space is declared in :data:`PARAMETER_SCHEMA`; any value
outside its bounds (or any unknown parameter) raises
:class:`ScenarioError` at construction time, so an invalid scenario
cannot exist.  Scenarios serialize to/from JSON bit-identically
(:meth:`Scenario.to_json` / :meth:`Scenario.from_json`) and the same
``(scenario, seed)`` pair always generates the same snapshot and
ground truth.

Parameters
----------
- ``scale`` — CVE-population multiplier over the caller's base
  population (>1.0 grows the snapshot past the paper's 107.2K CVEs);
- ``vendor_chaos`` — multiplier on alias minting and variant use: how
  noisy §4.2's vendor/product naming gets;
- ``severity_drift`` — per-year severity drift: positive values make
  late years sample systematically more severe CVSS v2 triples;
- ``burstiness`` — multiplier on batch/event-day concentration (§4.1's
  year-end backdating and coordinated-disclosure days) and on the
  weekday skew;
- ``adversarial_rate`` — fraction of entries mutated into hostile
  shapes (PR 6's ``GeneratorConfig.adversarial_rate`` machinery);
- ``trace`` — a :class:`TraceSpec`: the seeded, replayable request mix
  the service bench fires (previously hard-coded in
  ``tools/bench_service.py``).

The named presets live in :data:`SCENARIOS`:

====================  =====================================================
``baseline``          the paper's measured distribution (strict
                      generalization of the old default path)
``chaos-names``       vendor-name chaos dialed up 4x
``drift``             severity drifts upward across years
``burst``             disclosure/publication days concentrate 3x harder
``adversarial``       5% of entries mutated into hostile shapes
``xl``                1.5x the base population (past the paper's snapshot
                      when the base is full scale)
====================  =====================================================
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
import urllib.parse

from repro.synth.generator import GeneratorConfig

__all__ = [
    "MAX_N_CVES",
    "PARAMETER_SCHEMA",
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "TraceSpec",
    "build_request_trace",
    "get_scenario",
    "scenario_names",
    "with_overrides",
]


class ScenarioError(ValueError):
    """An invalid scenario: unknown name, unknown parameter, or a
    parameter value outside the declared schema bounds."""


#: Hard population ceiling: 4x the paper's 107.2K-CVE snapshot.  The
#: generator and the cleaning pipeline scale linearly in memory, so an
#: unbounded ``scale`` would be an accidental OOM, not an experiment.
MAX_N_CVES = 428_800


@dataclasses.dataclass(frozen=True, slots=True)
class ParamSpec:
    """Declared bounds and documentation for one scenario parameter."""

    doc: str
    lo: float
    hi: float


#: The declared parameter space.  ``Scenario`` construction validates
#: every field against these bounds and rejects anything else.
PARAMETER_SCHEMA: dict[str, ParamSpec] = {
    "scale": ParamSpec(
        "CVE-population multiplier over the base population "
        "(>1.0 grows past the paper's 107.2K CVEs)",
        lo=0.001, hi=4.0,
    ),
    "vendor_chaos": ParamSpec(
        "multiplier on vendor/product alias minting and variant use "
        "(1.0 = the paper's measured §4.2 rates)",
        lo=0.0, hi=10.0,
    ),
    "severity_drift": ParamSpec(
        "per-year severity drift; positive skews late years toward "
        "more severe CVSS v2 triples (0.0 = stationary)",
        lo=-1.0, hi=1.0,
    ),
    "burstiness": ParamSpec(
        "multiplier on batch/event-day fractions and the weekday skew "
        "(1.0 = the paper's Table 8 concentrations; 0.0 = uniform)",
        lo=0.0, hi=8.0,
    ),
    "adversarial_rate": ParamSpec(
        "fraction of entries mutated into hostile shapes "
        "(empty descriptions, colliding aliases, missing CVSS)",
        lo=0.0, hi=0.5,
    ),
}

#: Endpoint labels of the service-bench request trace, in the order the
#: historical hard-coded mix listed them (order is part of the replay
#: contract: it fixes the RNG draw sequence).
TRACE_ENDPOINTS = ("cve", "vendor", "product", "predict", "stats", "healthz")


@dataclasses.dataclass(frozen=True, slots=True)
class TraceSpec:
    """Replayable request mix for the service bench.

    Integer weights per endpoint; the defaults reproduce the mix
    ``tools/bench_service.py`` used to hard-code, so the ``baseline``
    trace is bit-identical to the historical workload at equal seed.
    """

    cve: int = 50
    vendor: int = 15
    product: int = 15
    predict: int = 10
    stats: int = 5
    healthz: int = 5

    def weights(self) -> tuple[tuple[str, int], ...]:
        """(endpoint, weight) pairs in canonical trace order."""
        return tuple((name, getattr(self, name)) for name in TRACE_ENDPOINTS)

    def errors(self) -> list[str]:
        found: list[str] = []
        total = 0
        for name, weight in self.weights():
            if not isinstance(weight, int) or isinstance(weight, bool):
                found.append(f"trace.{name} must be an integer, got {weight!r}")
            elif weight < 0:
                found.append(f"trace.{name} must be >= 0, got {weight}")
            else:
                total += weight
        if not found and total == 0:
            found.append("trace mix must have at least one positive weight")
        return found

    def to_json(self) -> dict:
        return {name: weight for name, weight in self.weights()}

    @classmethod
    def from_json(cls, data: object) -> "TraceSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"trace must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - set(TRACE_ENDPOINTS))
        if unknown:
            raise ScenarioError(
                f"unknown trace endpoint(s) {unknown}; known: {list(TRACE_ENDPOINTS)}"
            )
        return cls(**data)


@dataclasses.dataclass(frozen=True, slots=True)
class Scenario:
    """One schema-validated point in the generator's parameter space."""

    name: str = "baseline"
    scale: float = 1.0
    vendor_chaos: float = 1.0
    severity_drift: float = 0.0
    burstiness: float = 1.0
    adversarial_rate: float = 0.0
    trace: TraceSpec = TraceSpec()

    def __post_init__(self) -> None:
        errors = self.errors()
        if errors:
            raise ScenarioError(
                f"invalid scenario {self.name!r}: " + "; ".join(errors)
            )

    # -- validation --------------------------------------------------------

    def errors(self) -> list[str]:
        """Every schema violation in this scenario (empty = valid)."""
        found: list[str] = []
        if not isinstance(self.name, str) or not self.name or self.name.split() != [self.name]:
            found.append(f"name must be a non-empty token, got {self.name!r}")
        for parameter, spec in PARAMETER_SCHEMA.items():
            value = getattr(self, parameter)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                found.append(f"{parameter} must be a number, got {value!r}")
            elif not math.isfinite(value):
                found.append(f"{parameter} must be finite, got {value!r}")
            elif not (spec.lo <= value <= spec.hi):
                found.append(
                    f"{parameter}={value!r} outside [{spec.lo}, {spec.hi}]"
                )
        if not isinstance(self.trace, TraceSpec):
            found.append(f"trace must be a TraceSpec, got {type(self.trace).__name__}")
        else:
            found.extend(self.trace.errors())
        return found

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """A canonical JSON-ready dict (round-trips bit-identically)."""
        return {
            "name": self.name,
            "params": {
                parameter: float(getattr(self, parameter))
                for parameter in PARAMETER_SCHEMA
            },
            "trace": self.trace.to_json(),
        }

    def dumps(self) -> str:
        """The canonical serialized form (stable key order)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, data: object) -> "Scenario":
        """Parse and validate a :meth:`to_json` document."""
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"name", "params", "trace"})
        if unknown:
            raise ScenarioError(f"unknown scenario key(s) {unknown}")
        if "name" not in data:
            raise ScenarioError("scenario is missing 'name'")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ScenarioError("scenario 'params' must be an object")
        unknown = sorted(set(params) - set(PARAMETER_SCHEMA))
        if unknown:
            raise ScenarioError(
                f"unknown scenario parameter(s) {unknown}; "
                f"known: {sorted(PARAMETER_SCHEMA)}"
            )
        trace = TraceSpec.from_json(data["trace"]) if "trace" in data else TraceSpec()
        return cls(name=data["name"], trace=trace, **params)

    # -- the function: (scenario, base population, seed) → data ------------

    def n_cves(self, base_n_cves: int) -> int:
        """The scenario's population over a base population."""
        value = max(1, round(base_n_cves * self.scale))
        if value > MAX_N_CVES:
            raise ScenarioError(
                f"scenario {self.name!r}: scale={self.scale} over a base of "
                f"{base_n_cves} CVEs yields {value} CVEs, past the "
                f"{MAX_N_CVES} ceiling (memory grows linearly with the "
                "population); lower the 'scale' scenario parameter or the "
                "base population"
            )
        return value

    def generator_config(self, base_n_cves: int, seed: int) -> GeneratorConfig:
        """The :class:`GeneratorConfig` this scenario denotes.

        The ``baseline`` scenario returns exactly
        ``GeneratorConfig(n_cves=base_n_cves, seed=seed)`` — the engine
        is a strict generalization of the old default path, so default
        bundles stay bit-identical to pre-engine builds.
        """
        config = GeneratorConfig(n_cves=self.n_cves(base_n_cves), seed=seed)
        if self.vendor_chaos != 1.0:
            config = dataclasses.replace(
                config,
                vendor_group_fraction=min(
                    0.9, config.vendor_group_fraction * self.vendor_chaos
                ),
                product_group_fraction=min(
                    0.9, config.product_group_fraction * self.vendor_chaos
                ),
                variant_use_probability=min(
                    0.9, config.variant_use_probability * self.vendor_chaos
                ),
            )
        if self.severity_drift != 0.0:
            config = dataclasses.replace(config, severity_drift=self.severity_drift)
        if self.burstiness != 1.0:
            config = dataclasses.replace(config, burstiness=self.burstiness)
        if self.adversarial_rate != 0.0:
            config = dataclasses.replace(config, adversarial_rate=self.adversarial_rate)
        return config

    def generate(self, base_n_cves: int, seed: int):
        """Generate the scenario's bundle (snapshot + web + truth)."""
        from repro.synth.generator import generate as _generate

        return _generate(self.generator_config(base_n_cves, seed))


# ---------------------------------------------------------------------------
# The preset registry.
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(name="baseline"),
        Scenario(name="chaos-names", vendor_chaos=4.0),
        Scenario(name="drift", severity_drift=0.6),
        Scenario(name="burst", burstiness=3.0),
        Scenario(name="adversarial", adversarial_rate=0.05),
        Scenario(name="xl", scale=1.5),
    )
}


def scenario_names() -> list[str]:
    """The preset names, registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a preset; unknown names raise :class:`ScenarioError`."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def with_overrides(scenario: Scenario, overrides: dict[str, str | float]) -> Scenario:
    """``scenario`` with parameters overridden (CLI ``--set key=value``).

    Values are parsed as numbers and validated against
    :data:`PARAMETER_SCHEMA`; unknown keys or out-of-range values raise
    :class:`ScenarioError`.
    """
    parsed: dict[str, float] = {}
    for key, raw in overrides.items():
        if key not in PARAMETER_SCHEMA:
            raise ScenarioError(
                f"unknown scenario parameter {key!r}; "
                f"known: {sorted(PARAMETER_SCHEMA)}"
            )
        try:
            parsed[key] = float(raw)
        except (TypeError, ValueError):
            raise ScenarioError(
                f"scenario parameter {key} must be a number, got {raw!r}"
            ) from None
    return dataclasses.replace(scenario, **parsed)


# ---------------------------------------------------------------------------
# The request trace: the service bench's replayable workload.
# ---------------------------------------------------------------------------


def build_request_trace(
    spec: TraceSpec,
    snapshot,
    n_requests: int,
    seed: int,
) -> list[tuple[str, str, bytes | None]]:
    """A deterministic (label, path, POST body) request trace.

    Replays bit-identically from ``(spec, snapshot, n_requests, seed)``
    — the ``baseline`` spec reproduces the mix the service bench used
    to hard-code.  ``snapshot`` is the served :class:`NvdSnapshot`.
    """
    from repro.cvss import v2_vector_string

    rng = random.Random(seed)
    entries = snapshot.entries
    scored = [e for e in entries if e.cvss_v2 is not None]
    vendors = snapshot.vendors()
    pairs = [pair for e in entries[:2000] for pair in e.vendor_products()]
    labels = [label for label, weight in spec.weights() for _ in range(weight)]
    workload: list[tuple[str, str, bytes | None]] = []
    for _ in range(n_requests):
        label = rng.choice(labels)
        if label == "predict" and not scored:
            # An adversarial snapshot can strip CVSS vectors; degrade
            # the request to /v1/stats instead of crashing the bench.
            label = "stats"
        if label == "product" and not pairs:
            label = "stats"
        if label == "cve":
            workload.append((label, f"/v1/cve/{rng.choice(entries).cve_id}", None))
        elif label == "vendor":
            name = urllib.parse.quote(rng.choice(vendors))
            workload.append((label, f"/v1/vendor/{name}", None))
        elif label == "product":
            vendor, product = rng.choice(pairs)
            path = f"/v1/product/{urllib.parse.quote(vendor)}/{urllib.parse.quote(product)}"
            workload.append((label, path, None))
        elif label == "predict":
            entry = rng.choice(scored)
            body = json.dumps(
                {
                    "cvss_v2": v2_vector_string(entry.cvss_v2),
                    "description": entry.description,
                }
            ).encode("utf-8")
            workload.append((label, "/v1/severity/predict", body))
        else:
            workload.append((label, "/healthz" if label == "healthz" else "/v1/stats", None))
    return workload
