"""Synthetic web corpus: the pages behind reference URLs.

Implements the :class:`repro.web.crawler.WebClient` protocol.  Pages
are *specified* compactly (URL → disclosure date) and *rendered* lazily
on fetch, in the layout registered for the URL's domain, so a
full-scale corpus (≈590K pages) costs a few megabytes.

Rendered pages are deliberately adversarial in a realistic way: every
page also carries unrelated dates (a last-modified stamp after the
disclosure and a copyright year), so a naive "grab the first date on
the page" scraper would mis-estimate disclosure dates.  Only the
layout-aware extractors in :mod:`repro.web.crawler` recover the right
field.
"""

from __future__ import annotations

import datetime
import hashlib

from repro.web.domains import TOP_DOMAINS, domain_of, is_dead_domain

__all__ = ["SyntheticWeb"]

_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
_LONG_MONTHS = ("January", "February", "March", "April", "May", "June",
                "July", "August", "September", "October", "November",
                "December")


def _us_date(date: datetime.date) -> str:
    return f"{_MONTHS[date.month - 1]} {date.day:02d} {date.year}"


def _long_date(date: datetime.date) -> str:
    return f"{_LONG_MONTHS[date.month - 1]} {date.day}, {date.year}"


def _rfc2822(date: datetime.date) -> str:
    return (
        f"{_WEEKDAYS[date.weekday()]}, {date.day} {_MONTHS[date.month - 1]} "
        f"{date.year} 10:23:00 +0000"
    )


def _render(layout: str, date: datetime.date, noise_days: int) -> str:
    """Render a page of the given layout embedding ``date``.

    ``noise_days`` shifts the decoy last-modified stamp so every page
    is unique and decoys never precede the true date.
    """
    modified = date + datetime.timedelta(days=30 + noise_days)
    decoys = (
        f"<div class='footer'>Copyright 1996-2018 Example Corp. "
        f"Last modified: {modified.isoformat()}</div>"
    )
    if layout == "securityfocus":
        body = (
            f"<table><tr><td>Class:</td><td>Input Validation Error</td></tr>\n"
            f"<tr><td>Published:</td><td>{_us_date(date)} 12:00AM</td></tr>\n"
            f"<tr><td>Updated:</td><td>{_us_date(modified)} 09:14AM</td></tr></table>"
        )
    elif layout == "securitytracker":
        body = (
            f"<b>SecurityTracker Archives</b>\n"
            f"Date:  {_us_date(date)}\n"
            f"Impact: Execution of arbitrary code"
        )
    elif layout == "bugzilla":
        body = (
            f"<th>Reported:</th><td>{date.isoformat()} 10:23 EST by a user</td>\n"
            f"<th>Modified:</th><td>{modified.isoformat()} 11:00 EST</td>"
        )
    elif layout == "mailinglist":
        body = (
            f"List: security-announce\n"
            f"Date: {_rfc2822(date)}\n"
            f"Subject: [SECURITY] advisory"
        )
    elif layout == "jvn":
        body = (
            f"<dl><dt>公開日：</dt><dd>{date.year}/{date.month:02d}/{date.day:02d}</dd>\n"
            f"<dt>最終更新日：</dt><dd>{modified.year}/{modified.month:02d}/"
            f"{modified.day:02d}</dd></dl>"
        )
    elif layout == "advisory":
        body = (
            f'<meta name="published" content="{date.isoformat()}">\n'
            f"<h1>Security Advisory</h1>\n"
            f"<p>First published: {_long_date(date)}</p>\n"
            f"<p>Last updated: {_long_date(modified)}</p>"
        )
    elif layout == "dsa":
        body = (
            f"<dt>Date Reported:</dt>\n<dd>{date.day:02d} "
            f"{_MONTHS[date.month - 1]} {date.year}</dd>\n"
            f"<dt>Affected Packages:</dt><dd>example</dd>"
        )
    elif layout == "usn":
        body = (
            f"<p class='p-muted-heading'>Published: {date.day} "
            f"{_LONG_MONTHS[date.month - 1]} {date.year}</p>\n"
            f"<h1>USN: vulnerability</h1>"
        )
    elif layout == "github":
        body = (
            f'<relative-time datetime="{date.isoformat()}T10:23:00Z">'
            f"on {_us_date(date)}</relative-time>"
        )
    elif layout == "exploitdb":
        body = (
            f"<table><tr><td>EDB-ID:</td><td>12345</td></tr>\n"
            f"<tr><td>Date:</td><td>{date.isoformat()}</td></tr></table>"
        )
    elif layout == "certvu":
        body = (
            f"<p>Original Release Date: {date.isoformat()} | "
            f"Last Revised: {modified.isoformat()}</p>"
        )
    elif layout == "xforce":
        body = (
            f"<span>Reported: {_MONTHS[date.month - 1]} {date.day}, {date.year}"
            f"</span>"
        )
    elif layout == "debbugs":
        body = f"Date: {_rfc2822(date)}\nSeverity: grave"
    elif layout == "launchpad":
        body = f"<span>Reported on {date.isoformat()} by a user</span>"
    else:  # "plain"
        body = f"<p>Advisory published {date.isoformat()}.</p>"
    return f"<html><body>\n{body}\n{decoys}\n</body></html>"


class SyntheticWeb:
    """An in-memory web: URL → page spec, rendered on fetch."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._pages: dict[str, datetime.date] = {}
        self.fetch_count = 0

    def add_page(self, url: str, disclosure_date: datetime.date) -> None:
        """Register the page behind ``url`` carrying ``disclosure_date``."""
        self._pages[url] = disclosure_date

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def date_of(self, url: str) -> datetime.date | None:
        """The disclosure date a page was specified with (test oracle)."""
        return self._pages.get(url)

    def fetch(self, url: str) -> str | None:
        """Serve a page; dead domains and unknown URLs return None."""
        self.fetch_count += 1
        domain = domain_of(url)
        if is_dead_domain(domain):
            return None
        date = self._pages.get(url)
        if date is None:
            return None
        info = TOP_DOMAINS.get(domain)
        layout = info.layout if info else "plain"
        digest = hashlib.blake2b(
            f"{self.seed}:{url}".encode(), digest_size=2
        ).digest()
        noise_days = digest[0] % 90
        return _render(layout, date, noise_days)
