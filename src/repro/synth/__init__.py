"""Synthetic data substrate.

The paper's raw materials — a 2018 NVD snapshot, the live web behind
591.4K reference URLs, and the SecurityFocus/SecurityTracker databases
— are unavailable offline.  This package synthesises deterministic
equivalents with the paper's *measured* statistical properties and
*injected* inconsistencies with known ground truth:

- :mod:`repro.synth.names` — vendor/product name universe and the
  inconsistent-variant generators (typos, special characters,
  abbreviations, prefixes, product-as-vendor);
- :mod:`repro.synth.descriptions` — CWE-conditioned CVE description
  templates (including evaluator comments embedding CWE ids);
- :mod:`repro.synth.generator` — the NVD snapshot generator (dates and
  lag structure, CVSS v2→v3 ground-truth relationships, CWE labelling
  gaps, CPE assignment, reference URLs);
- :mod:`repro.synth.webcorpus` — the in-memory web serving per-domain
  page layouts with embedded disclosure dates;
- :mod:`repro.synth.otherdbs` — SecurityFocus / SecurityTracker vendor
  tables sharing the NVD vendor universe;
- :mod:`repro.synth.scenario` — the parametric scenario engine: named,
  schema-validated points in the generator's parameter space plus the
  replayable service-bench request trace.
"""

from repro.synth.generator import (
    GeneratorConfig,
    GroundTruth,
    SyntheticNvd,
    corrupt_feed,
    generate,
)
from repro.synth.otherdbs import OtherDatabase, generate_securityfocus, generate_securitytracker
from repro.synth.scenario import (
    SCENARIOS,
    Scenario,
    ScenarioError,
    TraceSpec,
    build_request_trace,
    get_scenario,
    scenario_names,
)
from repro.synth.webcorpus import SyntheticWeb

__all__ = [
    "GeneratorConfig",
    "GroundTruth",
    "OtherDatabase",
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "SyntheticNvd",
    "SyntheticWeb",
    "TraceSpec",
    "build_request_trace",
    "corrupt_feed",
    "generate",
    "generate_securityfocus",
    "generate_securitytracker",
    "get_scenario",
    "scenario_names",
]
