"""§4.3 case study: backport CVSS v3 severity to v2-only CVEs.

Trains the paper's model line-up (LR, SVR, CNN, DNN), compares their
error and accuracy, picks the best, predicts v3 for every v2-only CVE,
and shows how the severity mix shifts — plus which features matter.

Run:  python examples/severity_backport.py [--fast]
"""

import sys
from collections import Counter

from repro.core import EngineConfig, SeverityPredictionEngine
from repro.reporting import render_table
from repro.synth import GeneratorConfig, generate


def main() -> None:
    fast = "--fast" in sys.argv
    models = ("lr", "dnn") if fast else ("lr", "svr", "cnn", "dnn")
    bundle = generate(GeneratorConfig(n_cves=4000, seed=17))
    dual = bundle.snapshot.with_v3()
    v2_only = bundle.snapshot.v2_only()
    print(
        f"{len(dual)} CVEs carry both scores (ground truth); "
        f"{len(v2_only)} carry only v2 and need backporting."
    )

    engine = SeverityPredictionEngine(
        EngineConfig(epochs=10 if fast else 40, models=models)
    ).fit(dual)
    scores = engine.evaluate()
    rows = [
        [
            name.upper(),
            s.average_error_rate * 100,
            s.average_error,
            s.accuracy * 100,
        ]
        for name, s in sorted(scores.items())
    ]
    print(
        render_table(
            ["Model", "AER (%)", "AE", "Accuracy (%)"],
            rows,
            title="\nModel comparison (Tables 5 and 7)",
        )
    )

    best = engine.best_model()
    print(f"\nBest model: {best.upper()} — backporting v3 to v2-only CVEs ...")
    predicted = engine.predict_severities(v2_only, model=best)
    before = Counter(entry.v2_severity.value for entry in v2_only)
    after = Counter(severity.value for severity in predicted)
    mix_rows = [
        [label, before.get(label, 0), after.get(label, 0)]
        for label in ("LOW", "MEDIUM", "HIGH", "CRITICAL")
    ]
    print(
        render_table(
            ["Severity", "v2 count", "predicted v3 count"],
            mix_rows,
            title="\nSeverity mix before/after backporting (Table 6)",
        )
    )

    print("\nPermutation feature importance (top 5):")
    importance = engine.feature_importance(model=best, n_repeats=2)
    for feature, delta in sorted(importance.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {feature:<26} +{delta:.3f} AE when shuffled")


if __name__ == "__main__":
    main()
