"""§4.2 case study: find and fix inconsistent vendor/product names.

Demonstrates both operating modes:

1. **heuristic mode** — no analyst, no ground truth: only the
   high-precision signals (token identity, prefix+substring) confirm;
2. **oracle mode** — the synthetic ground truth plays the analyst, so
   recall can be measured.

Run:  python examples/audit_vendor_names.py
"""

from repro.core import (
    analyze_products,
    analyze_vendors,
    apply_vendor_mapping,
    from_ground_truth,
    heuristic_product_confirm,
    heuristic_vendor_confirm,
    product_oracle_from_truth,
)
from repro.reporting import render_table
from repro.synth import GeneratorConfig, generate


def main() -> None:
    bundle = generate(GeneratorConfig(n_cves=5000, seed=13))
    snapshot = bundle.snapshot

    print("=== Heuristic mode (no analyst in the loop) ===")
    heuristic = analyze_vendors(snapshot, heuristic_vendor_confirm)
    print(
        f"candidate pairs: {len(heuristic.candidates)}, "
        f"auto-confirmed: {len(heuristic.confirmed)}, "
        f"names remapped: {len(heuristic.mapping)}"
    )

    print("\n=== Oracle mode (ground truth plays the analyst) ===")
    oracle = analyze_vendors(snapshot, from_ground_truth(bundle.truth.vendor_map))
    print(
        f"candidate pairs: {len(oracle.candidates)}, "
        f"confirmed: {len(oracle.confirmed)}, names remapped: {len(oracle.mapping)}"
    )

    sample = sorted(oracle.mapping.items())[:12]
    print()
    print(
        render_table(
            ["Inconsistent name", "Canonical name"],
            [[variant, canonical] for variant, canonical in sample],
            title="Sample of the vendor mapping",
        )
    )

    fixed = apply_vendor_mapping(snapshot, oracle.mapping)
    print(
        f"\nDistinct vendors: {len(snapshot.vendors())} before -> "
        f"{len(fixed.vendors())} after"
    )

    products = analyze_products(
        fixed, product_oracle_from_truth(bundle.truth.product_map)
    )
    print(
        f"Product pairs flagged: {len(products.candidates)}, confirmed: "
        f"{len(products.confirmed)}, affecting {products.n_vendors_affected} vendors"
    )
    heuristic_products = analyze_products(fixed, heuristic_product_confirm)
    print(
        f"Heuristic product mode confirms {len(heuristic_products.confirmed)} "
        f"(edit-distance pairs need an analyst: similar model numbers are "
        f"usually different products)"
    )


if __name__ == "__main__":
    main()
