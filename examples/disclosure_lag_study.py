"""§4.1 case study: how far do NVD publication dates lag disclosure?

Scrapes every CVE's reference URLs through the per-domain crawlers,
estimates disclosure dates, and reproduces the Figure 1 / Table 8 /
Figure 2 analyses side by side.

Run:  python examples/disclosure_lag_study.py
"""

from repro.analysis import day_of_week_counts, lag_within, top_dates
from repro.core import estimate_all, improvement_by_severity, lag_cdf
from repro.reporting import render_bar_chart, render_cdf, render_table
from repro.synth import GeneratorConfig, generate


def main() -> None:
    bundle = generate(GeneratorConfig(n_cves=5000, seed=11))
    print("Scraping reference URLs for disclosure dates ...")
    estimates = estimate_all(bundle.snapshot, bundle.web)

    lags, cdf = lag_cdf(estimates)
    print(render_cdf(lags, cdf, title="\nLag-time CDF (Figure 1)"))
    print(
        f"\n  zero lag: {lag_within(estimates, 0) * 100:.1f}%   "
        f"within 6 days: {lag_within(estimates, 6) * 100:.1f}%   "
        f"over a week: {(1 - lag_within(estimates, 7)) * 100:.1f}%"
    )

    improved = improvement_by_severity(bundle.snapshot, estimates)
    print("\nShare of CVEs whose date improved, by v2 severity:")
    for severity, share in sorted(improved.items(), key=lambda kv: kv[0].value):
        print(f"  {severity.value:<8} {share * 100:5.1f}%")

    published_dates = [entry.published for entry in bundle.snapshot]
    estimated_dates = [e.estimated_disclosure for e in estimates.values()]
    rows = [
        [
            p.date.isoformat(), p.day_of_week, p.count, f"{p.percent_of_year:.1f}",
            e.date.isoformat(), e.day_of_week, e.count, f"{e.percent_of_year:.1f}",
        ]
        for p, e in zip(top_dates(published_dates, 10), top_dates(estimated_dates, 10))
    ]
    print()
    print(
        render_table(
            ["CVE date", "DoW", "#", "%yr", "EDD", "DoW", "#", "%yr"],
            rows,
            title="Top-10 busiest dates (Table 8): NVD dates vs estimated disclosure",
        )
    )

    print()
    print(
        render_bar_chart(
            {k: float(v) for k, v in day_of_week_counts(estimated_dates).items()},
            title="Disclosures per weekday (Figure 2)",
        )
    )


if __name__ == "__main__":
    main()
