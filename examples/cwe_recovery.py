"""§4.4 case study: recover vulnerability types from descriptions.

Shows both tools: the regex fix (applied to the database) and the
description classifier (reported only — 65% accuracy is not enough to
auto-apply, exactly the paper's judgement).

Run:  python examples/cwe_recovery.py
"""

from repro.core import DescriptionClassifier, apply_cwe_fixes, extract_cwe_fixes
from repro.cwe import CATALOG
from repro.reporting import render_table
from repro.synth import GeneratorConfig, generate


def main() -> None:
    bundle = generate(GeneratorConfig(n_cves=4000, seed=23))
    snapshot = bundle.snapshot

    sentinel_like = (
        len(snapshot.missing_cwe())
    )
    print(
        f"{sentinel_like} of {len(snapshot)} CVEs "
        f"({100 * sentinel_like / len(snapshot):.1f}%) have no usable CWE label "
        f"(paper: ≈31%)."
    )

    result = extract_cwe_fixes(snapshot)
    rows = [
        ["fixes recovered by the CWE-[0-9]* regex", result.n_fixed],
        ["... were NVD-CWE-Other", result.fixed_other],
        ["... were NVD-CWE-noinfo", result.fixed_noinfo],
        ["... were unassigned", result.fixed_unassigned],
        ["... added ids to labeled CVEs", result.fixed_already_labeled],
    ]
    print(render_table(["Regex recovery (Section 4.4)", "Count"], rows))

    correct = sum(
        1
        for cve_id, found in result.fixes.items()
        if bundle.truth.true_cwe[cve_id] in found
    )
    print(
        f"\nGround-truth check: {correct}/{result.n_fixed} recovered labels are "
        f"the true type (the paper's manual sample found no erroneous cases)."
    )

    fixed = apply_cwe_fixes(snapshot, result)
    example_id = next(iter(result.fixes))
    example = fixed[example_id]
    entry = CATALOG.get(example.cwe_ids[0])
    print(
        f"\nExample: {example_id} now carries {example.cwe_ids[0]}"
        f" ({entry.name if entry else 'unknown'})"
    )

    print("\nTraining the k-NN description classifier (paper: 65.6%, 151 classes) ...")
    classifier = DescriptionClassifier(algorithm="knn", k=1)
    accuracy, n_classes = classifier.evaluate_on_snapshot(snapshot)
    print(
        f"  accuracy {accuracy * 100:.1f}% over {n_classes} classes — useful, "
        f"but not reliable enough to auto-apply (the paper's conclusion too)."
    )


if __name__ == "__main__":
    main()
