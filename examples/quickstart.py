"""Quickstart: generate a synthetic NVD, clean it, inspect the report.

Run:  python examples/quickstart.py [n_cves]
"""

import sys

from repro.core import EngineConfig, clean, from_ground_truth, product_oracle_from_truth
from repro.reporting import render_table
from repro.synth import GeneratorConfig, generate


def main() -> None:
    n_cves = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"Generating a synthetic NVD snapshot with {n_cves} CVEs ...")
    bundle = generate(GeneratorConfig(n_cves=n_cves, seed=7))
    stats = bundle.snapshot.stats()
    print(
        f"  {stats.n_cves} CVEs, {stats.n_vendors} vendors, "
        f"{stats.n_products} products, {stats.n_cwe_types} CWE types, "
        f"{stats.n_references} reference URLs, years "
        f"{stats.year_range[0]}-{stats.year_range[1]}"
    )

    print("Running the full cleaning pipeline (dates, names, severity, CWE) ...")
    rectified = clean(
        bundle.snapshot,
        bundle.web,
        from_ground_truth(bundle.truth.vendor_map),
        product_oracle_from_truth(bundle.truth.product_map),
        engine_config=EngineConfig(epochs=15, models=("lr", "dnn")),
    )

    report = rectified.report
    rows = [
        ["CVEs processed", report.n_cves],
        ["publication dates improved", report.n_improved_dates],
        ["vendor names impacted", report.n_vendor_names_impacted],
        ["... consolidated onto", report.n_vendor_names_canonical],
        ["product names impacted", report.n_product_names_impacted],
        ["vendors with product fixes", report.n_product_vendors_affected],
        ["v3 scores backported", report.n_v3_predicted],
        ["CWE labels recovered", report.n_cwe_fixed],
        ["prediction model used", report.model_used.upper()],
    ]
    print(render_table(["What the cleaner did", "Count"], rows))

    exact = sum(
        1
        for cve_id, estimate in rectified.estimates.items()
        if estimate.estimated_disclosure == bundle.truth.disclosure[cve_id]
    )
    print(
        f"\nGround-truth check: estimated disclosure dates exactly correct for "
        f"{exact}/{len(rectified.estimates)} CVEs "
        f"({100 * exact / len(rectified.estimates):.1f}%)."
    )


if __name__ == "__main__":
    main()
