"""Export a rectified snapshot as an NVD JSON feed.

The downstream workflow the paper envisions: clean the database, then
publish the corrected dataset in the same feed format consumers
already parse.  This example cleans a snapshot, writes the corrected
feed (gzip), reloads it, and diffs a corrected entry against the
original.

Run:  python examples/export_rectified_feed.py [output.json.gz]
"""

import pathlib
import sys
import tempfile

from repro.core import EngineConfig, clean, from_ground_truth, product_oracle_from_truth
from repro.nvd import load_feed, save_feed
from repro.synth import GeneratorConfig, generate


def main() -> None:
    if len(sys.argv) > 1:
        out_path = pathlib.Path(sys.argv[1])
    else:
        out_path = pathlib.Path(tempfile.gettempdir()) / "nvd-rectified.json.gz"

    bundle = generate(GeneratorConfig(n_cves=2500, seed=29))
    rectified = clean(
        bundle.snapshot,
        bundle.web,
        from_ground_truth(bundle.truth.vendor_map),
        product_oracle_from_truth(bundle.truth.product_map),
        engine_config=EngineConfig(epochs=10, models=("lr", "dnn")),
    )

    save_feed(rectified.snapshot.entries, out_path)
    print(f"Wrote rectified feed: {out_path} ({out_path.stat().st_size / 1024:.0f} KiB)")

    reloaded = load_feed(out_path)
    assert len(reloaded) == len(rectified.snapshot)
    print(f"Reloaded {len(reloaded)} entries — round-trip intact.")

    changed = next(
        (
            cve_id
            for cve_id in rectified.cwe_fixes.fixes
            if bundle.snapshot[cve_id].cwe_ids != rectified.snapshot[cve_id].cwe_ids
        ),
        None,
    )
    if changed:
        print(f"\nExample correction ({changed}):")
        print(f"  CWE before: {bundle.snapshot[changed].cwe_ids}")
        print(f"  CWE after:  {rectified.snapshot[changed].cwe_ids}")
    remapped = next(iter(rectified.vendor_analysis.mapping.items()), None)
    if remapped:
        print(f"  vendor fix example: {remapped[0]!r} -> {remapped[1]!r}")


if __name__ == "__main__":
    main()
