#!/usr/bin/env python
"""CI probe for the multi-worker serving plane.

Launches ``repro serve --workers N --shared-cache`` against an artifact
store, then drives the scale-out surface end to end:

1. waits for ``/healthz``, then collects ``/v1/metrics`` until every
   worker pid has reported, asserting each one runs the *shared* cache
   backend against the same segment;
2. walks a vendor's id list by following ``next_cursor`` page by page
   (on whichever worker the kernel routes each request to) and asserts
   the walk reproduces the offset-paged full list exactly;
3. asserts a tampered cursor fails with a self-describing 400;
4. fires a concurrent predict burst and asserts every response is
   bit-identical to its single-request reference;
5. re-collects per-worker metrics, asserts cross-worker cache hits
   happened, and lints the Prometheus ``/metrics`` exposition with
   ``tools/check_metrics.py`` (shared-cache and predict-batch families
   included).

Exit code 0 when every probe passes; 1 with a diagnostic otherwise.

Usage::

    PYTHONPATH=src python tools/serve_scale_probe.py --artifacts /tmp/store
    PYTHONPATH=src python tools/serve_scale_probe.py --artifacts /tmp/store \
        --workers 2 --burst 16
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

PREDICT_VECTOR = "AV:N/AC:L/Au:N/C:C/I:C/A:C"


class ProbeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise ProbeFailure(message)


def get(base_url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base_url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_text(base_url: str, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(base_url + path, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def post(base_url: str, path: str, body: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(base_url: str, timeout_s: float = 90.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            status, _ = get(base_url, "/healthz")
            if status == 200:
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.2)
    raise ProbeFailure(f"server at {base_url} never became healthy")


def collect_worker_metrics(
    base_url: str, expect: int, attempts: int = 400
) -> dict[int, dict]:
    """Latest /v1/metrics blob per worker pid (SO_REUSEPORT roulette)."""
    seen: dict[int, dict] = {}
    for _ in range(attempts):
        status, blob = get(base_url, "/v1/metrics")
        if status == 200 and isinstance(blob.get("pid"), int):
            seen[blob["pid"]] = blob
        if len(seen) >= expect:
            break
        time.sleep(0.02)
    return seen


def probe_shared_backend(base_url: str, workers: int) -> dict[int, dict]:
    per_worker = collect_worker_metrics(base_url, workers)
    check(
        len(per_worker) == workers,
        f"expected {workers} worker pids in /v1/metrics, saw "
        f"{sorted(per_worker)}",
    )
    segments = {
        blob["cache"].get("shared", {}).get("segment")
        for blob in per_worker.values()
    }
    backends = {blob["cache"]["backend"] for blob in per_worker.values()}
    check(backends == {"shared"}, f"cache backends: {backends}")
    check(
        len(segments) == 1 and None not in segments,
        f"workers disagree on the shared segment: {segments}",
    )
    print(
        f"[probe] {workers} workers on shared segment "
        f"{next(iter(segments))}"
    )
    return per_worker


def probe_cursor_walk(base_url: str, snapshot) -> None:
    vendor, count = max(
        snapshot.vendor_cve_counts().items(),
        key=lambda item: (item[1], item[0]),
    )
    quoted = urllib.parse.quote(vendor)
    status, full_page = get(base_url, f"/v1/vendor/{quoted}")
    check(status == 200, f"vendor fetch failed: {status}")
    full = full_page["cve_ids"]
    seen: list[str] = []
    cursor = None
    for _ in range(count + 2):
        path = f"/v1/vendor/{quoted}?limit=2"
        if cursor:
            path += f"&cursor={cursor}"
        status, page = get(base_url, path)
        check(status == 200, f"cursor page failed: {status} {page}")
        seen.extend(page["cve_ids"])
        cursor = page["next_cursor"]
        if cursor is None:
            break
    check(
        seen == full,
        f"cursor walk diverged: {len(seen)} ids vs {len(full)} expected",
    )
    status, error = get(base_url, f"/v1/vendor/{quoted}?cursor=tampered!!")
    check(status == 400, f"tampered cursor answered {status}")
    check("cursor" in error.get("error", ""), f"unhelpful 400: {error}")
    print(
        f"[probe] cursor walk over {vendor!r} reproduced {len(full)} ids "
        "across workers; tampered cursor rejected with 400"
    )


def probe_predict_burst(base_url: str, burst: int) -> None:
    bodies = [
        {
            "cvss_v2": PREDICT_VECTOR,
            "description": f"stack overflow variant {i}, CWE-121.",
        }
        for i in range(burst)
    ]
    references = []
    for body in bodies:
        status, payload = post(base_url, "/v1/severity/predict", body)
        check(status == 200, f"reference predict failed: {status} {payload!r}")
        references.append(payload)
    results: list = [None] * burst

    def hit(i: int) -> None:
        results[i] = post(base_url, "/v1/severity/predict", bodies[i])

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for i, (status, payload) in enumerate(results):
        check(status == 200, f"burst predict {i} failed: {status}")
        check(
            payload == references[i],
            f"burst predict {i} diverged from its single-request reference",
        )
    print(
        f"[probe] {burst}-request concurrent predict burst bit-identical "
        "to single-request references"
    )


def probe_metrics_lint(base_url: str) -> None:
    import check_metrics

    status, text = get_text(base_url, "/metrics")
    check(status == 200, f"/metrics answered {status}")
    problems = check_metrics.lint_exposition(text)
    check(not problems, f"/metrics lint problems: {problems}")
    for family in (
        "repro_http_cache_shared_slots",
        "repro_http_cache_shared_occupied",
        "repro_http_cache_shared_segment_bytes",
        "repro_predict_batch_total",
        "repro_predict_batch_rows_bucket",
    ):
        check(family in text, f"family {family} missing from /metrics")
    print("[probe] /metrics lints clean with shared-cache + batch families")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", type=pathlib.Path, required=True, metavar="DIR"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--burst", type=int, default=16)
    args = parser.parse_args(argv)

    from repro.artifacts import load_artifacts
    from repro.runtime import SerialExecutor

    artifacts = load_artifacts(args.artifacts, executor=SerialExecutor())
    port = free_port()
    base_url = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--artifacts", str(args.artifacts),
            "--port", str(port),
            "--workers", str(args.workers),
            "--shared-cache",
        ],
        env=env,
    )
    try:
        wait_healthy(base_url)
        per_worker = probe_shared_backend(base_url, args.workers)
        probe_cursor_walk(base_url, artifacts.snapshot)
        probe_predict_burst(base_url, args.burst)
        # Hot-key phase: the first /v1/stats populates the shared
        # segment from whichever worker caught it; every repeat — on
        # ANY worker — must then hit the shared cache.
        for _ in range(20):
            status, _ = get(base_url, "/v1/stats")
            check(status == 200, f"stats answered {status}")
        after = collect_worker_metrics(base_url, args.workers)
        total_hits = sum(
            blob["cache"]["hits"] for blob in after.values()
        )
        check(total_hits > 0, "no cache hits recorded across workers")
        probe_metrics_lint(base_url)
        print(
            f"[probe] OK: {args.workers} workers, {total_hits} cache hits "
            f"across pids {sorted(after)}"
        )
        del per_worker
        return 0
    except ProbeFailure as failure:
        print(f"[probe] FAILED: {failure}", file=sys.stderr)
        return 1
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5)


if __name__ == "__main__":
    raise SystemExit(main())
