"""Assemble EXPERIMENTS.md from the rendered benchmark outputs.

Run the benchmark suite first (``PYTHONPATH=src pytest benchmarks/``,
which writes the rendered tables/figures to ``benchmarks/out/``),
then:  python tools/make_experiments_md.py

Or let this tool run the suite itself::

    python tools/make_experiments_md.py --run --crawl-cache .crawl_cache.json

``--crawl-cache`` points the suite's §4.1 crawl at the same persistent
cache ``tools/bench.py --crawl-cache`` uses (both default to the
``REPRO_CRAWL_CACHE`` environment variable), so one warm cache serves
benchmarking and experiment regeneration alike.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "benchmarks" / "out"

#: (output file stem, experiment title, bench module).
EXPERIMENTS = [
    ("table01", "Table 1 — CVSS severity bands", "test_table01_severity_bands.py"),
    ("fig1", "Figure 1 — CDF of lag times", "test_fig1_lag_cdf.py"),
    ("table02", "Table 2 — vendor naming patterns", "test_table02_vendor_patterns.py"),
    ("table03", "Table 3 — name inconsistencies in NVD/SF/ST", "test_table03_name_inconsistencies.py"),
    ("table04", "Table 4 — ground-truth v2→v3 transitions", "test_table04_v2_v3_transitions.py"),
    ("table05", "Table 5 — model error (AE/AER)", "test_table05_model_error.py"),
    ("table06", "Table 6 — predicted transitions (v2-only CVEs)", "test_table06_predicted_transitions.py"),
    ("table07", "Table 7 — model accuracy", "test_table07_model_accuracy.py"),
    ("table08", "Table 8 — top dates: CVE vs estimated disclosure", "test_table08_top_dates.py"),
    ("fig2", "Figure 2 — CVEs per day of week", "test_fig2_day_of_week.py"),
    ("table09", "Table 9 — severity distribution", "test_table09_severity_distribution.py"),
    ("fig3", "Figure 3 — yearly severity mix", "test_fig3_yearly_severity.py"),
    ("table10", "Table 10 — top types by severity", "test_table10_top_types.py"),
    ("table11", "Table 11 — top vendors", "test_table11_top_vendors.py"),
    ("table12", "Table 12 — mislabeled CVEs by severity", "test_table12_mislabel_severity.py"),
    ("fig4", "Figure 4 — average lag by severity", "test_fig4_lag_by_severity.py"),
    ("fig5", "Figure 5 — PCA feature patterns", "test_fig5_pca_patterns.py"),
    ("table13", "Table 13 — prediction over full ground truth", "test_table13_groundtruth_prediction.py"),
    ("table14", "Table 14 — test-split ground truth", "test_table14_test_groundtruth.py"),
    ("table15", "Table 15 — test-split predictions", "test_table15_test_prediction.py"),
    ("table16", "Table 16 — mislabeled-vendor case sample", "test_table16_case_sample.py"),
    ("sec44", "§4.4 — description classifier & regex recovery", "test_sec44_description_classifier.py"),
    ("ablation_domains", "Ablation — crawler domain coverage", "test_ablation_domain_coverage.py"),
    ("ablation_features", "Ablation — severity model features", "test_ablation_severity_features.py"),
    ("ablation_oracle", "Ablation — confirmation oracle", "test_ablation_confirmation_oracle.py"),
]

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure in the paper's evaluation, regenerated on the
synthetic NVD (a seeded generator with known ground truth standing in
for the authors' 2018 crawl) by the benchmark suite
(`PYTHONPATH=src pytest benchmarks/`).

Absolute counts differ from the paper — the substrate is a seeded,
scaled synthetic snapshot, not the authors' 2018 crawl — so each
benchmark asserts the paper's **shape**: who wins, which direction
effects point, and rough factors.  `[ok]` marks a shape that holds;
`[DIVERGES]` would mark one that does not (the suite fails in that
case).  Regenerate with `python tools/make_experiments_md.py` after a
benchmark run; `REPRO_SCALE=1.0` reproduces the paper's full 107.2K-CVE
population.

One deliberate deviation: the paper's Table 8 lists 07/09/18 (a date
past its own 2018-05-21 snapshot); our generator keeps all 2018 event
days inside the snapshot window.

Every table below is measured under the **`baseline` scenario** of the
parametric scenario engine (`repro.synth.scenario`) — the paper's
measured distribution, bit-identical to the pre-engine generation
path.  The other presets (`chaos-names`, `drift`, `burst`,
`adversarial`, `xl`) stress-test the pipeline in
`tests/test_scenarios.py` and the bench matrix
(`tools/bench.py --matrix`); they do not feed the paper-shape
assertions here.
"""


def run_benchmarks(crawl_cache: str | None) -> int:
    """Run the benchmark suite, sharing the bench harness's crawl cache.

    The suite's cleaning run (``repro.experiments.default_rectified``)
    honours ``REPRO_CRAWL_CACHE`` through ``clean()``, so exporting the
    variable is all the sharing takes — the same file
    ``tools/bench.py --crawl-cache`` reads and writes.
    """
    env = os.environ.copy()
    if crawl_cache:
        env["REPRO_CRAWL_CACHE"] = str(pathlib.Path(crawl_cache).resolve())
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q"],
        cwd=ROOT,
        env=env,
    )
    return result.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run", action="store_true",
        help="run the benchmark suite before assembling EXPERIMENTS.md",
    )
    parser.add_argument(
        "--crawl-cache", default=os.environ.get("REPRO_CRAWL_CACHE"),
        metavar="PATH",
        help="persistent §4.1 crawl cache shared with tools/bench.py "
        "(default: REPRO_CRAWL_CACHE; only used with --run)",
    )
    args = parser.parse_args(argv)

    if args.run:
        code = run_benchmarks(args.crawl_cache)
        if code != 0:
            print(f"benchmark suite failed (exit {code}); EXPERIMENTS.md not updated")
            return code
    elif args.crawl_cache and "REPRO_CRAWL_CACHE" not in os.environ:
        print("note: --crawl-cache only takes effect with --run")

    sections = [HEADER]
    for stem, title, module in EXPERIMENTS:
        path = OUT / f"{stem}.txt"
        sections.append(f"\n## {title}\n")
        sections.append(f"Bench: `benchmarks/{module}`\n")
        if path.exists():
            sections.append("```\n" + path.read_text().rstrip() + "\n```\n")
        else:
            sections.append("_(no output captured — run the benchmark suite)_\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
