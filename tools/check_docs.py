#!/usr/bin/env python
"""Documentation checks for CI.

Verifies that every relative markdown link in README.md and docs/*.md
points at a file or directory that exists in the repository.  External
(http/https/mailto) links are not fetched — CI must stay hermetic.

Usage::

    python tools/check_docs.py            # check README.md + docs/*.md
    python tools/check_docs.py FILE...    # check specific files
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline markdown links: [text](target); images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path.relative_to(REPO_ROOT)}:{line}: broken link {target!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [pathlib.Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / "README.md"]
        files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    missing = [f for f in files if not f.exists()]
    for path in missing:
        print(f"[docs] missing file: {path}")
    errors: list[str] = []
    for path in files:
        if path.exists():
            errors.extend(check_file(path))
    for error in errors:
        print(f"[docs] {error}")
    checked = len(files) - len(missing)
    if errors or missing:
        print(f"[docs] FAILED: {len(errors)} broken links, {len(missing)} missing files")
        return 1
    print(f"[docs] ok: {checked} files, all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
