#!/usr/bin/env python
"""Synthetic delta-feed generator for ingest benchmarks and tests.

Builds a realistic NVD *delta* feed against an existing base — a mix of
brand-new CVEs and mutations of already-published ones — so
``python -m repro ingest`` and ``tools/bench_service.py --ingest`` have
a workload shaped like NVD's daily "modified" feed:

- **mutations** revise existing entries the way NVD updates do: the
  description gains an analysis sentence naming a concrete CWE (which
  the §4.4 regex recovery picks up on ingest) and the ``modified``
  stamp advances past publication;
- **new CVEs** are cloned from base entries under fresh high-numbered
  ids, published after the base snapshot, and stripped of their CVSS
  v3 vector — exactly the rows the persisted §4.3 model backports.

The base comes from ``--base feed.json.gz`` or from the ``CURRENT``
version of an artifact store (``--artifacts DIR``).  Everything is
seeded, so the same arguments produce byte-identical feeds.

Usage::

    PYTHONPATH=src python tools/make_delta_feed.py --artifacts /tmp/store \\
        --out /tmp/delta.json.gz --new 200 --mutate 100
    PYTHONPATH=src python tools/make_delta_feed.py --base snapshot.json.gz \\
        --out delta.json.gz
"""

from __future__ import annotations

import argparse
import datetime
import pathlib
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: concrete CWE labels the mutated descriptions name (all in the §4.4
#: recovery surface).
_CWES = ("CWE-79", "CWE-89", "CWE-119", "CWE-20", "CWE-200", "CWE-264")


def build_delta(
    entries: list,
    n_new: int,
    n_mutate: int,
    seed: int,
) -> list:
    """The delta entries: ``n_mutate`` revisions + ``n_new`` fresh CVEs."""
    if not entries:
        raise ValueError("base feed is empty; nothing to derive a delta from")
    rng = random.Random(seed)
    ordered = sorted(entries, key=lambda entry: entry.cve_id)
    existing_ids = {entry.cve_id for entry in ordered}
    latest = max(entry.published for entry in ordered)

    delta = []
    for entry in rng.sample(ordered, min(n_mutate, len(ordered))):
        cwe = rng.choice(_CWES)
        revised = entry.description + (
            f" Further analysis classified this issue as {cwe}."
        )
        delta.append(
            entry.replace(
                descriptions=(revised, *entry.descriptions[1:]),
                modified=latest + datetime.timedelta(days=rng.randint(1, 30)),
            )
        )

    year = latest.year
    serial = 90000  # high numbers: never collides with generated ids
    for _ in range(n_new):
        template = rng.choice(ordered)
        while f"CVE-{year}-{serial}" in existing_ids:
            serial += 1
        cve_id = f"CVE-{year}-{serial}"
        serial += 1
        published = latest + datetime.timedelta(days=rng.randint(1, 45))
        delta.append(
            template.replace(
                cve_id=cve_id,
                published=published,
                modified=None,
                cvss_v3=None,  # the persisted model backports these
                descriptions=(
                    f"A newly disclosed issue similar to {template.cve_id}. "
                    + template.description,
                ),
            )
        )
    return delta


def load_base(base: pathlib.Path | None, artifacts: pathlib.Path | None) -> list:
    from repro.artifacts import read_current
    from repro.nvd import load_feed

    if base is not None:
        return load_feed(base)
    assert artifacts is not None
    version = read_current(artifacts)
    if version is None:
        raise SystemExit(f"[delta] no CURRENT version under {artifacts}")
    return load_feed(artifacts / version / "snapshot.json.gz")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--base", type=pathlib.Path, metavar="FEED",
        help="base NVD JSON feed to derive the delta from",
    )
    source.add_argument(
        "--artifacts", type=pathlib.Path, metavar="DIR",
        help="artifact store whose CURRENT snapshot is the base",
    )
    parser.add_argument("--out", type=pathlib.Path, required=True)
    parser.add_argument(
        "--new", type=int, default=200, dest="n_new",
        help="brand-new CVEs to invent (default: 200)",
    )
    parser.add_argument(
        "--mutate", type=int, default=100, dest="n_mutate",
        help="existing CVEs to revise (default: 100)",
    )
    parser.add_argument("--seed", type=int, default=2018)
    args = parser.parse_args(argv)
    if args.n_new < 0 or args.n_mutate < 0:
        parser.error("--new and --mutate must be non-negative")
    if args.n_new + args.n_mutate == 0:
        parser.error("nothing to generate: --new and --mutate are both 0")

    from repro.nvd import save_feed

    entries = load_base(args.base, args.artifacts)
    delta = build_delta(entries, args.n_new, args.n_mutate, args.seed)
    save_feed(delta, args.out)
    n_mutated = len(delta) - args.n_new
    print(
        f"[delta] wrote {len(delta)} entries to {args.out} "
        f"({n_mutated} mutated, {args.n_new} new; base {len(entries)} CVEs)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
