#!/usr/bin/env python
"""Serving-layer benchmark harness.

Cold-starts the query service from an artifact store, fires a mixed
request workload at it through concurrent clients, and appends
throughput plus p50/p95 latency (overall and per endpoint) to
``BENCH_service.json`` — the serving counterpart of ``tools/bench.py``
and ``BENCH_pipeline.json``, with the same schema-check pattern.

The request mix is no longer hard-coded: it comes from the scenario
engine's :class:`repro.synth.TraceSpec` (``--scenario`` picks the
preset, default ``baseline`` — the historical 50/15/15/10/5/5 mix) and
replays bit-identically from ``(trace, snapshot, requests, seed)``.
The scenario is recorded in every run entry.

``--workers-sweep 1,2,4`` benchmarks the *multi-process* plane
instead of the in-process server: for each worker count it launches
``repro serve --workers N`` as a subprocess (private response caches,
then one shared segment with ``--cache both``), replays the same
trace, aggregates every worker's ``/v1/metrics`` cache block by pid,
and records one run per configuration — rps, p50/p95, the
cross-worker cache hit ratio, and the shared segment's occupancy and
memory footprint (schema ``repro-bench-service/3``).

``--ingest DELTA_FEED`` benchmarks the *write* path instead: it times
``repro.artifacts.ingest_delta`` rolling the delta (typically from
``tools/make_delta_feed.py``) into a new store version and records
throughput as a ``kind: "ingest"`` run in the same trajectory file.

Usage::

    PYTHONPATH=src python -m repro demo --n-cves 8000 --artifacts /tmp/store
    PYTHONPATH=src python tools/bench_service.py --artifacts /tmp/store
    PYTHONPATH=src python tools/bench_service.py --artifacts /tmp/store \
        --requests 2000 --clients 8 --label current
    PYTHONPATH=src python tools/bench_service.py --artifacts /tmp/store \
        --scenario chaos-names
    PYTHONPATH=src python tools/make_delta_feed.py --artifacts /tmp/store \
        --out /tmp/delta.json.gz
    PYTHONPATH=src python tools/bench_service.py --artifacts /tmp/store \
        --ingest /tmp/delta.json.gz --label current
    python tools/bench_service.py --check-schema BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "repro-bench-service/3"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

#: required keys of one serving run entry and their types.  ``scenario``
#: names the trace scenario the workload replayed (schema /2).
_RUN_FIELDS = {
    "label": str,
    "scenario": str,
    "requests": int,
    "clients": int,
    "n_cves": int,
    "version": str,
    "wall_s": (int, float),
    "rps": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "endpoints": dict,
}

#: optional serving-run keys added by the workers sweep (schema /3);
#: typed when present, absent on in-process runs.
_OPTIONAL_RUN_FIELDS = {
    "workers": int,
    "cache": str,
    "cache_hit_ratio": (int, float),
    "shared_cache": dict,
}

#: required keys of one ``kind: "ingest"`` run entry.
_INGEST_FIELDS = {
    "label": str,
    "scenario": str,
    "n_delta": int,
    "n_new": int,
    "n_updated": int,
    "n_cves": int,
    "version": str,
    "wall_s": (int, float),
    "cves_per_s": (int, float),
}

def validate(data: object) -> list[str]:
    """Schema errors in a BENCH_service.json document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["document must be a JSON object"]
    if data.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {data.get('schema')!r}")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty list"]
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            errors.append(f"runs[{i}] must be an object")
            continue
        kind = run.get("kind", "serving")
        if kind not in ("serving", "ingest"):
            errors.append(f"runs[{i}].kind must be 'serving' or 'ingest'")
            continue
        fields = _INGEST_FIELDS if kind == "ingest" else _RUN_FIELDS
        for field, types in fields.items():
            if field not in run:
                errors.append(f"runs[{i}] missing field {field!r}")
            elif not isinstance(run[field], types):
                errors.append(f"runs[{i}].{field} has wrong type")
        if kind == "ingest":
            continue
        for field, types in _OPTIONAL_RUN_FIELDS.items():
            if field in run and run[field] is not None and not isinstance(
                run[field], types
            ):
                errors.append(f"runs[{i}].{field} has wrong type")
        if run.get("cache") not in (None, "shared", "private"):
            errors.append(f"runs[{i}].cache must be 'shared' or 'private'")
        endpoints = run.get("endpoints")
        if isinstance(endpoints, dict):
            for name, stats in endpoints.items():
                if not isinstance(stats, dict) or not {
                    "count",
                    "p50_ms",
                    "p95_ms",
                }.issubset(stats):
                    errors.append(
                        f"runs[{i}].endpoints[{name!r}] must carry "
                        "count/p50_ms/p95_ms"
                    )
    return errors


def load(path: pathlib.Path) -> dict:
    if path.exists():
        with path.open(encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": SCHEMA, "runs": []}


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def fire(base_url: str, item: tuple[str, str, bytes | None]) -> tuple[str, int, float]:
    """One client request; returns (endpoint label, status, seconds)."""
    label, path, body = item
    request = urllib.request.Request(
        base_url + path,
        data=body,
        headers={"Content-Type": "application/json"} if body else {},
        method="POST" if body is not None else "GET",
    )
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    return label, status, time.perf_counter() - start


def bench(
    artifacts_dir: pathlib.Path,
    n_requests: int,
    clients: int,
    seed: int,
    label: str,
    scenario_name: str = "baseline",
) -> dict:
    """Start the server, replay the scenario's request trace, return the
    run record."""
    from repro.artifacts import read_current
    from repro.runtime import ThreadExecutor
    from repro.service import create_server
    from repro.synth import build_request_trace, get_scenario

    scenario = get_scenario(scenario_name)

    t_cold = time.perf_counter()
    # Pin the live version: a pinned server never polls CURRENT, so the
    # measured request path carries no per-request pointer stat.
    server = create_server(artifacts_dir, port=0, version=read_current(artifacts_dir))
    cold_start_s = time.perf_counter() - t_cold
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    # The server already loaded (and hash-verified) the store; reuse
    # its artifacts for the workload ids instead of loading twice.
    artifacts = server.service.state.artifacts
    workload = build_request_trace(scenario.trace, artifacts.snapshot, n_requests, seed)
    print(
        f"[bench-service] {base_url} version={artifacts.version} "
        f"n_cves={len(artifacts.snapshot)} requests={n_requests} "
        f"clients={clients} scenario={scenario.name} "
        f"(cold start {cold_start_s:.2f}s)"
    )
    executor = ThreadExecutor(workers=clients)
    try:
        t_wall = time.perf_counter()
        results = executor.map(lambda item: fire(base_url, item), workload)
        wall_s = time.perf_counter() - t_wall
    finally:
        executor.close()
        server.shutdown()
        server.server_close()

    failures = [status for _, status, _ in results if status >= 400]
    if failures:
        raise RuntimeError(
            f"{len(failures)} requests failed (first status {failures[0]})"
        )
    latencies = sorted(seconds for _, _, seconds in results)
    by_endpoint: dict[str, list[float]] = {}
    for endpoint, _, seconds in results:
        by_endpoint.setdefault(endpoint, []).append(seconds)
    endpoints = {
        name: {
            "count": len(values),
            "p50_ms": round(percentile(sorted(values), 0.50) * 1000, 3),
            "p95_ms": round(percentile(sorted(values), 0.95) * 1000, 3),
        }
        for name, values in sorted(by_endpoint.items())
    }
    return {
        "label": label,
        "scenario": scenario.name,
        "requests": n_requests,
        "clients": clients,
        "n_cves": len(artifacts.snapshot),
        "version": artifacts.version,
        "cold_start_s": round(cold_start_s, 3),
        "wall_s": round(wall_s, 3),
        "rps": round(n_requests / wall_s, 1) if wall_s > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
        "endpoints": endpoints,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port number (released before the server binds it)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _wait_healthy(base_url: str, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(base_url + "/healthz", timeout=2) as resp:
                if resp.status == 200:
                    return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.1)
    raise RuntimeError(f"server at {base_url} never became healthy")


def _collect_worker_metrics(
    base_url: str, expect: int, attempts: int = 200
) -> dict[int, dict]:
    """Latest ``/v1/metrics`` blob per worker pid.

    ``SO_REUSEPORT`` load-balances *connections*, so hitting the
    endpoint repeatedly eventually lands on every worker; each blob
    carries its worker's ``pid``.  Returns what it saw even when fewer
    than ``expect`` pids answered within the attempt budget.
    """
    seen: dict[int, dict] = {}
    for _ in range(attempts):
        try:
            with urllib.request.urlopen(base_url + "/v1/metrics", timeout=5) as resp:
                blob = json.loads(resp.read())
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            time.sleep(0.05)
            continue
        pid = blob.get("pid")
        if isinstance(pid, int):
            seen[pid] = blob
        if len(seen) >= expect:
            break
    return seen


def bench_workers_sweep(
    artifacts_dir: pathlib.Path,
    counts: list[int],
    n_requests: int,
    clients: int,
    seed: int,
    label: str,
    scenario_name: str,
    cache_modes: list[str],
) -> list[dict]:
    """One run record per (worker count, cache backend) configuration.

    Unlike :func:`bench` this drives real ``repro serve`` subprocesses
    — the supervisor, ``SO_REUSEPORT`` workers, and (for the shared
    mode) the cross-worker cache segment are all the production path.
    The same trace replays against every configuration, so hit ratios
    compare like for like.
    """
    from repro.artifacts import load_artifacts, read_current
    from repro.runtime import SerialExecutor, ThreadExecutor
    from repro.synth import build_request_trace, get_scenario

    scenario = get_scenario(scenario_name)
    current = read_current(artifacts_dir)
    artifacts = load_artifacts(
        artifacts_dir, current, executor=SerialExecutor()
    )
    workload = build_request_trace(
        scenario.trace, artifacts.snapshot, n_requests, seed
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    runs: list[dict] = []
    for workers in counts:
        for cache_mode in cache_modes:
            port = _free_port()
            base_url = f"http://127.0.0.1:{port}"
            cmd = [
                sys.executable, "-m", "repro", "serve",
                "--artifacts", str(artifacts_dir),
                "--port", str(port),
                "--workers", str(workers),
            ]
            if current:
                cmd += ["--version", current]
            if cache_mode == "shared":
                cmd.append("--shared-cache")
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                env=env,
            )
            try:
                _wait_healthy(base_url)
                print(
                    f"[bench-service] sweep: workers={workers} "
                    f"cache={cache_mode} at {base_url}"
                )
                executor = ThreadExecutor(workers=clients)
                try:
                    t_wall = time.perf_counter()
                    results = executor.map(
                        lambda item: fire(base_url, item), workload
                    )
                    wall_s = time.perf_counter() - t_wall
                finally:
                    executor.close()
                failures = [s for _, s, _ in results if s >= 400]
                if failures:
                    raise RuntimeError(
                        f"{len(failures)} sweep requests failed "
                        f"(first status {failures[0]})"
                    )
                per_worker = _collect_worker_metrics(base_url, workers)
            finally:
                proc.send_signal(signal.SIGINT)
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5)
            hits = sum(
                blob.get("cache", {}).get("hits", 0)
                for blob in per_worker.values()
            )
            misses = sum(
                blob.get("cache", {}).get("misses", 0)
                for blob in per_worker.values()
            )
            lookups = hits + misses
            shared_block = None
            if cache_mode == "shared":
                for blob in per_worker.values():
                    segment = blob.get("cache", {}).get("shared")
                    if segment:
                        shared_block = {
                            "slots": segment.get("slots"),
                            "occupied": segment.get("occupied"),
                            "used_bytes": segment.get("used_bytes"),
                            "segment_bytes": segment.get("segment_bytes"),
                        }
                        break
            latencies = sorted(seconds for _, _, seconds in results)
            by_endpoint: dict[str, list[float]] = {}
            for endpoint, _, seconds in results:
                by_endpoint.setdefault(endpoint, []).append(seconds)
            run = {
                "label": label,
                "scenario": scenario.name,
                "requests": n_requests,
                "clients": clients,
                "workers": workers,
                "cache": cache_mode,
                "n_cves": len(artifacts.snapshot),
                "version": artifacts.version,
                "wall_s": round(wall_s, 3),
                "rps": round(n_requests / wall_s, 1) if wall_s > 0 else 0.0,
                "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
                "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
                "cache_hit_ratio": (
                    round(hits / lookups, 4) if lookups else None
                ),
                "workers_reporting": len(per_worker),
                "shared_cache": shared_block,
                "endpoints": {
                    name: {
                        "count": len(values),
                        "p50_ms": round(
                            percentile(sorted(values), 0.50) * 1000, 3
                        ),
                        "p95_ms": round(
                            percentile(sorted(values), 0.95) * 1000, 3
                        ),
                    }
                    for name, values in sorted(by_endpoint.items())
                },
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            }
            print(
                f"[bench-service]   {run['rps']} req/s, p50 "
                f"{run['p50_ms']}ms, p95 {run['p95_ms']}ms, hit ratio "
                f"{run['cache_hit_ratio']}"
            )
            runs.append(run)
    return runs


def bench_ingest(
    artifacts_dir: pathlib.Path,
    delta_path: pathlib.Path,
    label: str,
    scenario_name: str = "baseline",
) -> dict:
    """Time one incremental ingest of ``delta_path`` into the store.

    The store gains a new version (that is the workload being measured
    — delta cleaning *plus* the atomic export/pointer flip).
    """
    from repro.artifacts import ingest_delta
    from repro.nvd import load_feed
    from repro.synth import get_scenario

    scenario = get_scenario(scenario_name)
    entries = load_feed(delta_path)
    print(
        f"[bench-service] ingesting {len(entries)} delta CVEs "
        f"into {artifacts_dir} ..."
    )
    t_ingest = time.perf_counter()
    result = ingest_delta(artifacts_dir, entries)
    wall_s = time.perf_counter() - t_ingest
    return {
        "kind": "ingest",
        "label": label,
        "scenario": scenario.name,
        "n_delta": result.n_delta,
        "n_new": result.n_new,
        "n_updated": result.n_updated,
        "n_predicted": result.n_predicted,
        "n_cves": result.n_total,
        "version": result.version,
        "parent": result.parent,
        "wall_s": round(wall_s, 3),
        "cves_per_s": round(result.n_delta / wall_s, 1) if wall_s > 0 else 0.0,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", type=pathlib.Path, metavar="DIR",
        help="artifact store to cold-start the server from",
    )
    parser.add_argument(
        "--ingest", type=pathlib.Path, metavar="DELTA_FEED",
        help="benchmark the ingest path instead: roll this delta feed "
        "into the store (adds a version) and record throughput",
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--label", default="current")
    parser.add_argument(
        "--workers-sweep", metavar="N,N,...",
        help="benchmark real `repro serve --workers N` subprocesses for "
        "each worker count (e.g. 1,2,4), recording per-config rps, "
        "latency, cross-worker cache hit ratio, and shared-segment "
        "footprint",
    )
    parser.add_argument(
        "--cache", choices=("private", "shared", "both"), default="both",
        help="cache backend(s) the workers sweep exercises "
        "(default: both, one run per backend per worker count)",
    )
    parser.add_argument(
        "--scenario", default="baseline", metavar="NAME",
        help="scenario preset whose request trace to replay "
        "(default: baseline)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="trajectory JSON to append to (default: BENCH_service.json)",
    )
    parser.add_argument(
        "--check-schema", type=pathlib.Path, metavar="FILE",
        help="validate FILE against the service-bench schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        try:
            with args.check_schema.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"[bench-service] {args.check_schema}: unreadable: {error}")
            return 1
        errors = validate(data)
        for error in errors:
            print(f"[bench-service] schema error: {error}")
        print(
            f"[bench-service] {args.check_schema}: "
            + ("INVALID" if errors else f"valid ({len(data['runs'])} runs)")
        )
        return 1 if errors else 0

    if args.artifacts is None:
        parser.error("--artifacts is required (or use --check-schema)")
    if args.requests < 1 or args.clients < 1:
        parser.error("--requests and --clients must be positive")

    from repro.synth import ScenarioError, get_scenario

    try:
        get_scenario(args.scenario)
    except ScenarioError as error:
        parser.error(str(error))

    document = load(args.output)
    if "runs" not in document or not isinstance(document.get("runs"), list):
        document = {"schema": SCHEMA, "runs": []}
    document["schema"] = SCHEMA

    if args.workers_sweep is not None:
        try:
            counts = [int(part) for part in args.workers_sweep.split(",") if part]
        except ValueError:
            parser.error("--workers-sweep must be a comma list of integers")
        if not counts or any(count < 1 for count in counts):
            parser.error("--workers-sweep counts must be positive")
        cache_modes = (
            ["private", "shared"] if args.cache == "both" else [args.cache]
        )
        runs = bench_workers_sweep(
            args.artifacts,
            counts,
            args.requests,
            args.clients,
            args.seed,
            args.label,
            args.scenario,
            cache_modes,
        )
        document["runs"].extend(runs)
    elif args.ingest is not None:
        run = bench_ingest(args.artifacts, args.ingest, args.label, scenario_name=args.scenario)
        document["runs"].append(run)
        print(
            f"[bench-service] ingest: {run['n_delta']} delta CVEs in "
            f"{run['wall_s']}s ({run['cves_per_s']} CVEs/s) → version "
            f"{run['version']} ({run['n_cves']} total)"
        )
    else:
        run = bench(
            args.artifacts,
            args.requests,
            args.clients,
            args.seed,
            args.label,
            scenario_name=args.scenario,
        )
        document["runs"].append(run)
        print(
            f"[bench-service] {run['rps']} req/s, p50 {run['p50_ms']}ms, "
            f"p95 {run['p95_ms']}ms over {run['requests']} requests"
        )
        for name, stats in run["endpoints"].items():
            print(
                f"  {name:<10} count={stats['count']:<6} "
                f"p50={stats['p50_ms']}ms p95={stats['p95_ms']}ms"
            )

    errors = validate(document)
    if errors:  # defensive: never write a file CI would reject
        for error in errors:
            print(f"[bench-service] internal schema error: {error}")
        return 1
    args.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"[bench-service] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
