#!/usr/bin/env python
"""Prometheus exposition-format and trace-file linter.

Checks a ``/metrics`` payload — fetched live with ``--url`` or read
from a saved snapshot file — against the text exposition format 0.0.4
contract that scrapers depend on:

- every sample's metric family declares ``# TYPE`` (and ``# HELP``)
  *before* its first sample, and a family's samples are contiguous;
- metric and label names are legal (``[a-zA-Z_:][a-zA-Z0-9_:]*`` /
  ``[a-zA-Z_][a-zA-Z0-9_]*``);
- no series (name + label set) appears twice;
- every sample value parses as a float (``+Inf``/``-Inf``/``NaN``
  included);
- histogram families expose cumulative, ``+Inf``-terminated
  ``_bucket`` series whose top bucket equals ``_count``.

With ``--trace FILE`` it instead validates a Chrome trace-event JSON
file (as written by ``REPRO_TRACE`` / ``--trace``): every event carries
the required keys, and ``--require-pids N`` additionally demands spans
from at least ``N`` distinct processes — the cross-process assertion CI
uses to prove worker spans survive the executor boundary.

Usage::

    PYTHONPATH=src python tools/check_metrics.py metrics.txt
    PYTHONPATH=src python tools/check_metrics.py --url http://127.0.0.1:8080/metrics
    PYTHONPATH=src python tools/check_metrics.py --trace trace.json --require-pids 2

Exit status is 0 when every check passes, 1 otherwise (every violation
is printed).
"""

from __future__ import annotations

import argparse
import math
import pathlib
import re
import sys
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)(?:\s+(?P<ts>\S+))?$"
)
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: sample-name suffixes each metric type may emit beyond the bare name.
_TYPE_SUFFIXES = {
    "histogram": ("_bucket", "_sum", "_count"),
    "summary": ("_sum", "_count"),
}


def _parse_labels(raw: str) -> tuple[list[tuple[str, str]], str | None]:
    """``a="x",b="y"`` → pairs; second item is an error (or None)."""
    pairs: list[tuple[str, str]] = []
    rest = raw.strip()
    while rest:
        match = re.match(r'^([^=,{}]+)="((?:[^"\\]|\\.)*)"\s*(?:,\s*|$)', rest)
        if match is None:
            return pairs, f"unparseable label fragment {rest!r}"
        name, value = match.group(1).strip(), match.group(2)
        if not LABEL_NAME_RE.match(name):
            return pairs, f"illegal label name {name!r}"
        value = value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        pairs.append((name, value))
        rest = rest[match.end():]
    return pairs, None


def _parse_value(raw: str) -> float | None:
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def _family_of(sample_name: str, typed: dict[str, str]) -> str:
    """The declared family a sample belongs to (longest-prefix match)."""
    if sample_name in typed:
        return sample_name
    for family, metric_type in typed.items():
        for suffix in _TYPE_SUFFIXES.get(metric_type, ()):
            if sample_name == family + suffix:
                return family
    return sample_name


def lint_exposition(text: str) -> list[str]:
    """All format violations in a ``/metrics`` payload (empty = clean)."""
    errors: list[str] = []
    typed: dict[str, str] = {}       # family -> declared type
    helped: set[str] = set()
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    #: families whose sample block has ended; reappearing is an error.
    closed: set[str] = set()
    current_family: str | None = None
    #: histogram buckets: (family, non-le labels) -> [(le, count)]
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not METRIC_NAME_RE.match(name):
                    errors.append(f"line {lineno}: illegal metric name {name!r}")
                    continue
                if parts[1] == "TYPE":
                    declared = parts[3].strip() if len(parts) > 3 else ""
                    if declared not in TYPES:
                        errors.append(
                            f"line {lineno}: unknown type {declared!r} for {name}"
                        )
                    if name in typed:
                        errors.append(f"line {lineno}: duplicate TYPE for {name}")
                    typed[name] = declared
                else:
                    helped.add(name)
            continue

        match = SAMPLE_RE.match(line.strip())
        if match is None:
            errors.append(f"line {lineno}: unparseable sample line {line!r}")
            continue
        sample_name = match.group("name")
        if not METRIC_NAME_RE.match(sample_name):
            errors.append(f"line {lineno}: illegal metric name {sample_name!r}")
            continue
        family = _family_of(sample_name, typed)
        if family not in typed:
            errors.append(f"line {lineno}: sample {sample_name} has no # TYPE")
        if family not in helped:
            errors.append(f"line {lineno}: sample {sample_name} has no # HELP")
        if family != current_family:
            if family in closed:
                errors.append(
                    f"line {lineno}: family {family} samples are not contiguous"
                )
            if current_family is not None:
                closed.add(current_family)
            current_family = family

        labels, label_error = _parse_labels(match.group("labels") or "")
        if label_error:
            errors.append(f"line {lineno}: {label_error}")
            continue
        series_key = (sample_name, tuple(sorted(labels)))
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {sample_name}{dict(labels)}")
        seen_series.add(series_key)

        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: value {match.group('value')!r} does not parse"
            )
            continue

        if typed.get(family) == "histogram":
            label_map = dict(labels)
            rest = tuple(sorted((k, v) for k, v in labels if k != "le"))
            if sample_name == family + "_bucket":
                if "le" not in label_map:
                    errors.append(f"line {lineno}: bucket sample missing le label")
                    continue
                bound = _parse_value(label_map["le"])
                if bound is None:
                    errors.append(
                        f"line {lineno}: le={label_map['le']!r} does not parse"
                    )
                    continue
                buckets.setdefault((family, rest), []).append((bound, value))
            elif sample_name == family + "_count":
                counts[(family, rest)] = value

    for (family, rest), pairs in buckets.items():
        series = f"{family}{dict(rest)}"
        bounds = [bound for bound, _ in pairs]
        if bounds != sorted(bounds):
            errors.append(f"{series}: bucket le bounds are not sorted")
        if not any(math.isinf(bound) and bound > 0 for bound in bounds):
            errors.append(f"{series}: no le=\"+Inf\" bucket")
        values = [count for _, count in pairs]
        if values != sorted(values):
            errors.append(f"{series}: bucket counts are not cumulative")
        if (family, rest) in counts and values:
            if counts[(family, rest)] != values[-1]:
                errors.append(
                    f"{series}: _count {counts[(family, rest)]} != "
                    f"+Inf bucket {values[-1]}"
                )
    return errors


def summarize_exposition(text: str) -> tuple[int, int]:
    """(n_families, n_samples) — for the success message."""
    families = set()
    samples = 0
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            families.add(line.split()[2])
        elif line.strip() and not line.startswith("#"):
            samples += 1
    return len(families), samples


# ---------------------------------------------------------------------------
# Trace-file checks.
# ---------------------------------------------------------------------------


def lint_trace_events(
    events: list, require_pids: int = 0
) -> tuple[list[str], set[int]]:
    """Schema violations in trace-event JSON, plus the span pid set."""
    errors: list[str] = []
    pids: set[int] = set()
    n_spans = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"events[{i}]: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append(f"events[{i}]: unexpected ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"events[{i}]: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"events[{i}]: missing integer pid")
            continue
        if phase == "X":
            n_spans += 1
            pids.add(event["pid"])
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(f"events[{i}]: missing numeric {key}")
            if not isinstance(event.get("tid"), int):
                errors.append(f"events[{i}]: missing integer tid")
            args = event.get("args")
            if not isinstance(args, dict) or not args.get("trace_id"):
                errors.append(f"events[{i}]: span args lack trace_id")
        else:
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"events[{i}]: metadata event lacks args.name")
    if n_spans == 0:
        errors.append("trace holds no spans (no ph=X events)")
    if require_pids and len(pids) < require_pids:
        errors.append(
            f"spans from {len(pids)} process(es), need >= {require_pids} "
            f"(pids: {sorted(pids)})"
        )
    return errors, pids


def check_trace(path: pathlib.Path, require_pids: int) -> int:
    from repro.obs.trace import load_trace

    try:
        events = load_trace(path)
    except (OSError, ValueError) as error:
        print(f"[check-metrics] {path}: unreadable trace: {error}")
        return 1
    errors, pids = lint_trace_events(events, require_pids=require_pids)
    for error in errors:
        print(f"[check-metrics] trace error: {error}")
    if errors:
        print(f"[check-metrics] {path}: INVALID ({len(errors)} errors)")
        return 1
    print(
        f"[check-metrics] {path}: valid trace — {len(events)} events, "
        f"spans from {len(pids)} process(es)"
    )
    return 0


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "snapshot", nargs="?", type=pathlib.Path,
        help="saved /metrics snapshot to lint",
    )
    parser.add_argument(
        "--url", metavar="URL",
        help="fetch and lint a live /metrics endpoint (also checks the "
        "Content-Type header)",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, metavar="FILE",
        help="validate a Chrome trace-event JSON file instead",
    )
    parser.add_argument(
        "--require-pids", type=int, default=0, metavar="N",
        help="with --trace: require spans from at least N distinct processes",
    )
    args = parser.parse_args(argv)

    if args.trace is not None:
        return check_trace(args.trace, args.require_pids)

    if (args.snapshot is None) == (args.url is None):
        parser.error("exactly one of SNAPSHOT, --url, or --trace is required")

    errors: list[str] = []
    if args.url is not None:
        source = args.url
        try:
            with urllib.request.urlopen(args.url, timeout=10.0) as response:
                content_type = response.headers.get("Content-Type", "")
                text = response.read().decode("utf-8")
        except OSError as error:
            print(f"[check-metrics] {args.url}: fetch failed: {error}")
            return 1
        if "text/plain" not in content_type or "version=0.0.4" not in content_type:
            errors.append(
                f"Content-Type {content_type!r} is not the exposition "
                f"format 0.0.4 content type"
            )
    else:
        source = str(args.snapshot)
        try:
            text = args.snapshot.read_text(encoding="utf-8")
        except OSError as error:
            print(f"[check-metrics] {source}: unreadable: {error}")
            return 1

    errors.extend(lint_exposition(text))
    for error in errors:
        print(f"[check-metrics] {error}")
    if errors:
        print(f"[check-metrics] {source}: INVALID ({len(errors)} errors)")
        return 1
    families, samples = summarize_exposition(text)
    print(
        f"[check-metrics] {source}: valid exposition — "
        f"{families} families, {samples} samples"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
