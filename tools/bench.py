#!/usr/bin/env python
"""Pipeline benchmark harness.

Runs the full cleaning pipeline (``repro.core.clean``) at one or more
``REPRO_SCALE`` factors, collects per-phase wall times from the
:mod:`repro.perf` recorder plus peak RSS, and appends the measurements
to ``BENCH_pipeline.json`` so the perf trajectory accumulates across
changes.  After each run it prints a before/after comparison against
the most recent earlier run at the same scale.

Every run is made under a named scenario (default ``baseline``, the
distribution every pre-engine number used); ``--scenario`` picks one
preset and ``--matrix`` fans each scale out across several presets so
perf claims cover the scenario matrix instead of one happy path.  The
scenario is recorded in every run entry.

Usage::

    PYTHONPATH=src python tools/bench.py                  # default scale
    PYTHONPATH=src python tools/bench.py --scales 0.075 0.25 1.0
    PYTHONPATH=src python tools/bench.py --label current --epochs 40
    PYTHONPATH=src python tools/bench.py --scales 0.25 --workers 2 \
        --crawl-cache .crawl_cache.json                   # parallel + warm crawl
    PYTHONPATH=src python tools/bench.py --scenario chaos-names
    PYTHONPATH=src python tools/bench.py --scales 0.02 --matrix   # all presets
    PYTHONPATH=src python tools/bench.py --matrix chaos-names adversarial
    PYTHONPATH=src python tools/bench.py --scales 0.075 --backend process \
        --workers-sweep 1,2,4 --dp-fit              # multi-core scaling curve
    PYTHONPATH=src python tools/bench.py --scales 0.02 --backend process \
        --workers 2 --trace trace.json            # Perfetto span trace
    PYTHONPATH=src python tools/bench.py --check-schema BENCH_pipeline.json

``--workers-sweep 1,2,4`` appends one labelled run per worker count
(label ``<label>-w<N>``), so a single invocation records the workers ×
numeric-backend scaling curve; combine with ``--dp-fit`` (data-parallel
gradient sharding) and ``--numeric-backend blas`` for the multi-core
configuration.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = "repro-bench/2"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

#: required keys of one run entry and their types.  ``scenario`` names
#: the generator scenario the run was measured under (schema /2).
_RUN_FIELDS = {
    "label": str,
    "scenario": str,
    "scale": (int, float),
    "n_cves": int,
    "epochs": int,
    "wall_s": (int, float),
    "peak_rss_mb": (int, float),
    "phases": dict,
}


def validate(data: object) -> list[str]:
    """Schema errors in a BENCH_pipeline.json document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["document must be a JSON object"]
    if data.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {data.get('schema')!r}")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty list"]
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            errors.append(f"runs[{i}] must be an object")
            continue
        for field, types in _RUN_FIELDS.items():
            if field not in run:
                errors.append(f"runs[{i}] missing field {field!r}")
            elif not isinstance(run[field], types):
                errors.append(f"runs[{i}].{field} has wrong type")
        phases = run.get("phases")
        if isinstance(phases, dict):
            bad = [k for k, v in phases.items() if not isinstance(v, (int, float))]
            for key in bad:
                errors.append(f"runs[{i}].phases[{key!r}] must be a number")
    return errors


def load(path: pathlib.Path) -> dict:
    if path.exists():
        with path.open(encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": SCHEMA, "runs": []}


def bench_one(
    scale: float,
    epochs: int,
    seed: int,
    label: str,
    scenario_name: str = "baseline",
    workers: int | None = None,
    backend: str | None = None,
    crawl_cache: str | None = None,
    numeric_backend: str | None = None,
    data_parallel: bool | None = None,
    trace_path: str | None = None,
) -> dict:
    """Run generate + clean at one (scale, scenario) and return the run
    record."""
    from repro import perf
    from repro.obs import trace_session
    from repro.core import (
        EngineConfig,
        clean,
        from_ground_truth,
        product_oracle_from_truth,
    )
    from repro.experiments import PAPER_SCALE_CVES
    from repro.runtime import make_executor
    from repro.synth import generate, get_scenario

    from repro.ml.backend import resolve_data_parallel, resolve_numeric_backend

    scenario = get_scenario(scenario_name)
    config = scenario.generator_config(max(2000, int(PAPER_SCALE_CVES * scale)), seed)
    n_cves = config.n_cves
    executor = make_executor(workers, backend)
    engine_config = EngineConfig(
        epochs=epochs,
        numeric_backend=numeric_backend,
        data_parallel=data_parallel,
    )
    resolved_numeric = resolve_numeric_backend(numeric_backend)
    resolved_dp = resolve_data_parallel(data_parallel)
    recorder = perf.get_recorder()
    recorder.reset()
    print(
        f"[bench] scale={scale} scenario={scenario.name} n_cves={n_cves} "
        f"epochs={epochs} workers={executor.workers} "
        f"backend={executor.backend} numeric={resolved_numeric} "
        f"dp_fit={'on' if resolved_dp else 'off'} ..."
    )
    trace_ctx = (
        trace_session(trace_path) if trace_path else contextlib.nullcontext()
    )
    with trace_ctx:
        t_generate = time.perf_counter()
        bundle = generate(config)
        generate_s = time.perf_counter() - t_generate

        t_clean = time.perf_counter()
        clean(
            bundle.snapshot,
            bundle.web,
            from_ground_truth(bundle.truth.vendor_map),
            product_oracle_from_truth(bundle.truth.product_map),
            engine_config=engine_config,
            executor=executor,
            crawl_cache=crawl_cache,
        )
        wall_s = time.perf_counter() - t_clean
        executor.close()
    if trace_path:
        print(f"[bench] wrote trace {trace_path}")

    phases = {name: round(seconds, 3) for name, seconds in recorder.phase_seconds().items()}
    phases["generate"] = round(generate_s, 3)
    return {
        "label": label,
        "scenario": scenario.name,
        "scale": scale,
        "n_cves": n_cves,
        "epochs": epochs,
        "workers": executor.workers,
        "backend": executor.backend,
        "numeric_backend": resolved_numeric,
        "data_parallel": resolved_dp,
        "wall_s": round(wall_s, 3),
        "peak_rss_mb": perf.peak_rss_mb(),
        "phases": phases,
        "counters": recorder.counters,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def compare(before: dict, after: dict) -> str:
    """A before/after table over wall time and shared phases."""
    lines = [
        f"before ({before['label']}) vs after ({after['label']}) "
        f"at scale {after['scale']}, "
        f"scenario {after.get('scenario', 'baseline')}:",
        f"  {'phase':<24}{'before_s':>10}{'after_s':>10}{'speedup':>9}",
    ]

    def row(name: str, b: float, a: float) -> str:
        speedup = f"{b / a:6.2f}x" if a > 0 else "    n/a"
        return f"  {name:<24}{b:>10.3f}{a:>10.3f}{speedup:>9}"

    lines.append(row("TOTAL clean()", before["wall_s"], after["wall_s"]))
    shared = [k for k in after["phases"] if k in before["phases"]]
    for name in sorted(shared):
        lines.append(row(name, before["phases"][name], after["phases"][name]))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", type=float, default=[0.075],
        help="REPRO_SCALE factors to run (default: 0.075)",
    )
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--label", default="current")
    parser.add_argument(
        "--scenario", default="baseline", metavar="NAME",
        help="generator scenario preset to run under (default: baseline)",
    )
    parser.add_argument(
        "--matrix", nargs="*", default=None, metavar="NAME",
        help="run each scale under several scenario presets "
        "(no names = every registered preset); overrides --scenario",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="execution-runtime workers (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--workers-sweep", default=None, metavar="N,N,...",
        help="comma-separated worker counts (e.g. 1,2,4): append one run "
        "per count, labelled <label>-w<N> — the scaling curve in one "
        "invocation; overrides --workers",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="executor backend (default: REPRO_BACKEND, or thread when N > 1)",
    )
    parser.add_argument(
        "--numeric-backend", choices=("numpy-ref", "blas"), default=None,
        help="numeric backend for the training GEMMs (default: "
        "REPRO_NUMERIC_BACKEND or numpy-ref)",
    )
    parser.add_argument(
        "--dp-fit", action="store_true",
        help="data-parallel fit: shard minibatch gradients across the "
        "executor (default: REPRO_DP_FIT or off)",
    )
    parser.add_argument(
        "--crawl-cache", default=None, metavar="PATH",
        help="persistent crawl cache JSON shared across runs "
        "(default: REPRO_CRAWL_CACHE or no cache)",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="PATH",
        help="write a Chrome trace-event JSON (Perfetto-loadable) of each "
        "run; with multiple runs, files are suffixed -<run index>",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="trajectory JSON to append to (default: BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--check-schema", type=pathlib.Path, metavar="FILE",
        help="validate FILE against the bench schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        try:
            with args.check_schema.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"[bench] {args.check_schema}: unreadable: {error}")
            return 1
        errors = validate(data)
        for error in errors:
            print(f"[bench] schema error: {error}")
        print(
            f"[bench] {args.check_schema}: "
            + ("INVALID" if errors else f"valid ({len(data['runs'])} runs)")
        )
        return 1 if errors else 0

    for scale in args.scales:
        if scale <= 0:
            parser.error(f"--scales must be positive, got {scale}")

    from repro.synth import ScenarioError, get_scenario, scenario_names

    if args.matrix is not None:
        scenarios = list(args.matrix) or scenario_names()
    else:
        scenarios = [args.scenario]
    try:
        for name in scenarios:
            get_scenario(name)
    except ScenarioError as error:
        parser.error(str(error))

    if args.workers_sweep is not None:
        try:
            sweep = [int(part) for part in args.workers_sweep.split(",") if part]
        except ValueError:
            parser.error(
                f"--workers-sweep must be comma-separated integers, "
                f"got {args.workers_sweep!r}"
            )
        if not sweep or any(n < 1 for n in sweep):
            parser.error(
                f"--workers-sweep counts must be >= 1, got {args.workers_sweep!r}"
            )
        #: (workers, label suffix) per run — one labelled point per count.
        worker_runs = [(n, f"-w{n}") for n in sweep]
    else:
        worker_runs = [(args.workers, "")]

    document = load(args.output)
    if "runs" not in document or not isinstance(document.get("runs"), list):
        document = {"schema": SCHEMA, "runs": []}
    document["schema"] = SCHEMA

    n_runs = len(args.scales) * len(scenarios) * len(worker_runs)
    run_index = 0
    for scale in args.scales:
        for scenario_name in scenarios:
            for workers, suffix in worker_runs:
                trace_path = None
                if args.trace is not None:
                    trace_path = str(args.trace)
                    if n_runs > 1:  # one trace file per run, never clobbered
                        trace_path = str(
                            args.trace.with_name(
                                f"{args.trace.stem}-{run_index}{args.trace.suffix}"
                            )
                        )
                run_index += 1
                run = bench_one(
                    scale,
                    args.epochs,
                    args.seed,
                    args.label + suffix,
                    scenario_name=scenario_name,
                    workers=workers,
                    backend=args.backend,
                    crawl_cache=args.crawl_cache,
                    numeric_backend=args.numeric_backend,
                    data_parallel=True if args.dp_fit else None,
                    trace_path=trace_path,
                )
                earlier = [
                    r
                    for r in document["runs"]
                    if r.get("scale") == scale
                    and r.get("epochs") == run["epochs"]
                    and r.get("scenario", "baseline") == run["scenario"]
                ]
                document["runs"].append(run)
                print(
                    f"[bench] scale={scale} scenario={run['scenario']} "
                    f"workers={run['workers']}: "
                    f"clean() {run['wall_s']}s, "
                    f"peak RSS {run['peak_rss_mb']} MiB"
                )
                if earlier:
                    print(compare(earlier[-1], run))

    errors = validate(document)
    if errors:  # defensive: never write a file CI would reject
        for error in errors:
            print(f"[bench] internal schema error: {error}")
        return 1
    args.output.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    print(f"[bench] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
