#!/usr/bin/env python
"""Chaos harness: the full pipeline under an injected fault plan.

Runs crawl→clean→export→ingest→serve twice — once fault-free, once
under a seeded :mod:`repro.faults` plan — and asserts the robustness
contract the fault plane promises:

- **no unhandled exception** anywhere in the faulted flow (any escape
  fails the harness with a traceback and a nonzero exit);
- **the store stays loadable** after every write phase, including the
  one whose export was torn mid-publish;
- **the service keeps answering** — every probe of the faulted server
  returns HTTP 200, and with ``serve.worker:kill`` in the plan a
  supervised ``repro serve --workers 2`` subprocess must respawn the
  killed worker and still shut down cleanly on SIGINT;
- **the telemetry plane stays honest** — both flows' ``/metrics``
  payloads pass the :mod:`check_metrics` exposition lint, and
  ``--trace`` writes a Perfetto-loadable span trace of each flow even
  when faults fire mid-phase;
- **the final output is bit-identical** to the fault-free run: every
  file of the ``CURRENT`` artifact version matches byte-for-byte after
  decompression (``manifest.json`` is excluded — version numbers shift
  when torn directories consume them, and npz/gzip containers embed
  write times).

Usage::

    PYTHONPATH=src python tools/chaos.py --scale 0.02 --seed 7
    PYTHONPATH=src python tools/chaos.py --plan "web.fetch:error=0.3" --keep
    PYTHONPATH=src python tools/chaos.py --scenario chaos-names

Everything is seeded; the same arguments produce the same faults at
the same points, which is what makes the bit-identical assertion a
hard guarantee instead of a lucky draw.
"""

from __future__ import annotations

import argparse
import contextlib
import gzip
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from make_delta_feed import build_delta  # noqa: E402 (tools/ sibling)

import check_metrics  # noqa: E402 (tools/ sibling)

#: Default plan: flaky web fetches, one torn artifact publish, one
#: failed hot-reload, one killed pool worker, one killed serve worker.
DEFAULT_PLAN = (
    "web.fetch:error=0.2;store.write:torn=1;serve.reload:error=1;"
    "worker:kill=1;serve.worker:kill=1"
)

#: The paper's snapshot is 107.2K CVEs; --scale multiplies it.
FULL_SCALE_CVES = 107_200


def log(message: str) -> None:
    print(f"[chaos] {message}", flush=True)


def http_get(url: str, timeout: float = 10.0) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def http_get_text(url: str, timeout: float = 10.0) -> tuple[int, str, str]:
    """(status, content type, body) for a plain-text endpoint."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def http_get_retry(url: str, deadline_s: float = 30.0) -> tuple[int, dict]:
    """``http_get`` with retries — for workers still cold-starting."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return http_get(url)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


# ---------------------------------------------------------------------------
# One pipeline flow (fault-free or faulted, depending on the plan).
# ---------------------------------------------------------------------------


def run_flow(
    workdir: pathlib.Path,
    *,
    plan_text: str | None,
    seed: int,
    n_cves: int,
    epochs: int,
    scenario_name: str = "baseline",
    trace_path: str | None = None,
) -> dict:
    """crawl→clean→export→pool→ingest→serve under ``plan_text``.

    Returns a summary dict (store path, CURRENT version, probe and
    fault tallies).  Every phase asserts its own invariant; an
    unhandled exception from any layer fails the harness.
    """
    from repro import faults
    from repro.artifacts import load_artifacts, read_current
    from repro.core import (
        EngineConfig,
        clean,
        from_ground_truth,
        product_oracle_from_truth,
    )
    from repro.nvd import load_feed
    from repro.obs import trace_session
    from repro.runtime import make_executor
    from repro.service import create_server
    from repro.synth import generate, get_scenario

    scenario = get_scenario(scenario_name)
    label = "faulted" if plan_text else "baseline"
    if plan_text:
        faults.install(faults.FaultPlan.parse(plan_text, seed=seed))
    else:
        faults.clear()

    store = workdir / "store"
    cache_path = workdir / "crawl_cache.json"
    summary: dict = {"label": label, "store": store}

    # Span tracing must survive the fault plan: the trace file is written
    # on ExitStack close even when a phase below raises.
    trace = contextlib.ExitStack()
    if trace_path:
        trace.enter_context(trace_session(trace_path))
    try:
        # -- generate + crawl + clean + export ---------------------------
        config = scenario.generator_config(n_cves, seed)
        bundle = generate(config)
        log(f"{label}: cleaning {config.n_cves} CVEs (scenario {scenario.name})")
        rectified = clean(
            bundle.snapshot,
            bundle.web,
            from_ground_truth(bundle.truth.vendor_map),
            product_oracle_from_truth(bundle.truth.product_map),
            engine_config=EngineConfig(
                models=("lr",), epochs=epochs, workers=1, backend="serial"
            ),
            crawl_cache=str(cache_path),
        )
        version = rectified.export_artifacts(store)
        load_artifacts(store)  # store must be loadable right after export
        log(f"{label}: exported {version}, store loadable")

        # -- process pool under worker:kill ------------------------------
        executor = make_executor(2, "process")
        try:
            squares = executor.map(_square, list(range(32)))
        finally:
            executor.close()
        assert squares == [i * i for i in range(32)], "pool map corrupted"

        # -- serve, then ingest while live: the hot swap (and the
        # injected reload failure) happens under the server's feet ------
        server = create_server(store, port=0, reload_interval=0.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base_url = f"http://{host}:{port}"
            status, _ = http_get(base_url + "/healthz")
            assert status == 200, f"/healthz answered {status}"

            base_entries = load_feed(
                store / read_current(store) / "snapshot.json.gz"
            )
            delta = build_delta(base_entries, n_new=20, n_mutate=10, seed=seed)
            from repro.artifacts import ingest_delta

            result = ingest_delta(store, delta, crawl_cache=str(cache_path))
            load_artifacts(store)
            log(f"{label}: ingested {result.n_delta} → {result.version}")

            # Every probe must answer 200 throughout the swap window; a
            # failed reload costs a retry on the next request, never an
            # error response.  The service must land on the new version.
            served = None
            for _ in range(10):
                status, payload = http_get(base_url + "/healthz")
                assert status == 200, f"/healthz answered {status}"
                served = payload["version"]
                if served == result.version:
                    break
            assert served == result.version, (
                f"service never swapped to {result.version} (stuck on {served})"
            )
            for path in ("/v1/stats", "/v1/metrics"):
                status, payload = http_get(base_url + path)
                assert status == 200, f"{path} answered {status}"
            summary["metrics"] = payload

            # The Prometheus plane must stay lintable under faults too.
            status, content_type, text = http_get_text(base_url + "/metrics")
            assert status == 200, f"/metrics answered {status}"
            assert "version=0.0.4" in content_type, (
                f"/metrics content type {content_type!r} is not exposition "
                f"format 0.0.4"
            )
            lint_errors = check_metrics.lint_exposition(text)
            assert not lint_errors, (
                f"/metrics failed the exposition lint: {lint_errors}"
            )
            summary["prometheus_families"] = summarized = (
                check_metrics.summarize_exposition(text)
            )
            log(
                f"{label}: /metrics lint clean "
                f"({summarized[0]} families, {summarized[1]} samples)"
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        log(f"{label}: service answered every probe and swapped versions")

        summary["current"] = read_current(store)
        if plan_text:
            plan = faults.active()
            summary["fired"] = {
                f"{site}:{kind}": plan.fired(site, kind)
                for site, kind in plan.specs
            }
    finally:
        trace.close()
        faults.clear()
    return summary


def _square(value: int) -> int:
    return value * value


# ---------------------------------------------------------------------------
# Supervised serving under serve.worker:kill (subprocess, own env plan).
# ---------------------------------------------------------------------------


def run_supervised_serve(store: pathlib.Path, seed: int, timeout: float = 60.0) -> None:
    """``repro serve --workers 2`` must survive a SIGKILLed worker.

    Waits for the supervisor's status drop-box to report the respawn,
    probes the (still answering) service, then SIGINTs the tree and
    requires a clean exit.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_FAULTS"] = "serve.worker:kill=1"
    env["REPRO_FAULTS_SEED"] = str(seed)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--artifacts", str(store), "--workers", "2", "--port", "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    status_path = store / ".supervisor.json"
    port = None
    try:
        banner = process.stdout.readline()
        assert "[serve]" in banner, f"unexpected banner: {banner!r}"
        port = int(banner.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
        deadline = time.monotonic() + timeout
        restarts = 0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise AssertionError(
                    f"supervisor died early (rc={process.returncode})"
                )
            try:
                status = json.loads(status_path.read_text(encoding="utf-8"))
                restarts = int(status.get("restarts", 0))
            except (OSError, ValueError):
                pass  # not written yet / mid-replace
            if restarts >= 1:
                break
            time.sleep(0.1)
        assert restarts >= 1, "supervisor never respawned the killed worker"
        status_code, payload = http_get_retry(f"http://127.0.0.1:{port}/healthz")
        assert status_code == 200, "service stopped answering after respawn"
        log(
            f"supervised serve: worker killed and respawned "
            f"(restarts={restarts}), still answering on :{port}"
        )
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
        try:
            output, _ = process.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            output, _ = process.communicate()
            raise AssertionError("supervisor ignored SIGINT")
    assert process.returncode == 0, (
        f"supervisor exited {process.returncode}; output:\n{output}"
    )


# ---------------------------------------------------------------------------
# Output equivalence.
# ---------------------------------------------------------------------------


def _normalized(path: pathlib.Path) -> object:
    """File content with container noise (gzip mtime, npz zip dates)
    stripped, so equality means the *data* is bit-identical."""
    if path.name.endswith(".json.gz"):
        with gzip.open(path, "rb") as handle:
            return handle.read()
    if path.suffix == ".npz":
        import numpy as np

        with np.load(path) as archive:
            return {name: archive[name].tobytes() for name in archive.files}
    return path.read_bytes()


def compare_current(baseline_store: pathlib.Path, faulted_store: pathlib.Path) -> int:
    """Assert the two CURRENT versions hold identical data; returns the
    number of files compared."""
    from repro.artifacts import read_current

    baseline_dir = baseline_store / read_current(baseline_store)
    faulted_dir = faulted_store / read_current(faulted_store)
    names = {
        str(path.relative_to(baseline_dir))
        for path in baseline_dir.rglob("*")
        if path.is_file() and path.name != "manifest.json"
    }
    other = {
        str(path.relative_to(faulted_dir))
        for path in faulted_dir.rglob("*")
        if path.is_file() and path.name != "manifest.json"
    }
    assert names == other, f"file sets differ: {sorted(names ^ other)}"
    for name in sorted(names):
        left = _normalized(baseline_dir / name)
        right = _normalized(faulted_dir / name)
        assert left == right, f"{name} differs between baseline and faulted run"
    return len(names)


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="fraction of the paper's 107.2K-CVE snapshot (default: 0.02)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scenario", default="baseline", metavar="NAME",
        help="generator scenario preset for both flows (default: baseline)",
    )
    parser.add_argument(
        "--plan", default=DEFAULT_PLAN,
        help=f"fault plan for the faulted run (default: {DEFAULT_PLAN!r})",
    )
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="PATH",
        help="write Chrome trace-event JSONs of both flows "
        "(PATH-baseline.json / PATH-faulted.json style suffixes)",
    )
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="working directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the working directory for inspection",
    )
    args = parser.parse_args(argv)

    from repro.synth import ScenarioError, get_scenario

    try:
        get_scenario(args.scenario)
    except ScenarioError as error:
        parser.error(str(error))
    n_cves = max(300, int(FULL_SCALE_CVES * args.scale))

    workdir = args.workdir or pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()

    def flow_trace(label: str) -> str | None:
        if args.trace is None:
            return None
        path = args.trace.with_name(
            f"{args.trace.stem}-{label}{args.trace.suffix or '.json'}"
        )
        log(f"{label}: tracing to {path}")
        return str(path)

    try:
        baseline = run_flow(
            workdir / "baseline",
            plan_text=None, seed=args.seed, n_cves=n_cves, epochs=args.epochs,
            scenario_name=args.scenario, trace_path=flow_trace("baseline"),
        )
        faulted = run_flow(
            workdir / "faulted",
            plan_text=args.plan, seed=args.seed, n_cves=n_cves, epochs=args.epochs,
            scenario_name=args.scenario, trace_path=flow_trace("faulted"),
        )
        fired = faulted.get("fired", {})
        log(f"faults fired: {fired}")
        assert any(fired.values()), (
            "the plan never fired; the chaos run degenerated to the baseline"
        )
        if fired.get("store.write:torn"):
            quarantine = faulted["store"] / ".quarantine"
            assert quarantine.exists() and any(quarantine.iterdir()), (
                "torn export fired but the recovery sweep quarantined nothing"
            )
            log("recovery sweep quarantined the torn version")
        if fired.get("serve.reload:error"):
            reload_failures = faulted["metrics"]["counters"].get("reload_failures", 0)
            assert reload_failures >= 1, (
                "reload fault fired but /v1/metrics reported no reload_failures"
            )
        n_files = compare_current(baseline["store"], faulted["store"])
        log(
            f"CURRENT ({baseline['current']} vs {faulted['current']}): "
            f"{n_files} files bit-identical"
        )
        if "serve.worker:kill" in args.plan:
            run_supervised_serve(faulted["store"], args.seed)
        log(f"PASS in {time.monotonic() - started:.1f}s (workdir: {workdir})")
        return 0
    finally:
        if not args.keep and args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
